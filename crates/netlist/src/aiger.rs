//! AIGER 1.9 reader and writer (ASCII `aag` and binary `aig` forms).
//!
//! AIGER is the interchange format of the HWMCC model-checking and ABC
//! synthesis communities: a circuit is an and/inverter graph over
//! *literals* — variable `v` contributes the positive literal `2v` and
//! the negated literal `2v + 1`, with `0`/`1` reserved for the constants
//! false/true. The header
//!
//! ```text
//! aag M I L O A        (ASCII)
//! aig M I L O A        (binary)
//! ```
//!
//! declares the maximum variable index `M` and the number of inputs,
//! latches, outputs, and AND gates. In the ASCII form every section
//! spells its literals out; in the binary form input and AND left-hand
//! sides are implicit (inputs are variables `1..=I`, ANDs are
//! `I+L+1..=I+L+A` in topological order) and each AND is stored as two
//! LEB128-style varint deltas. Both forms may carry AIGER 1.9 latch
//! reset values (`0`, `1`, or the latch's own literal for
//! "uninitialized" — the latter is rejected here because [`Netlist`]
//! latches power up to a known constant), a symbol table naming inputs,
//! latches, and outputs, and a trailing comment section.
//!
//! The mapping onto [`Netlist`] is structural: inputs and latches become
//! [`NodeKind::Input`]/[`NodeKind::Latch`] nodes, every AND becomes a
//! two-input [`GateKind::And`], and a negated literal materializes a
//! hash-consed [`GateKind::Not`] gate at its first use. Unnamed nodes
//! get deterministic fallback names (`i0`, `l1`, `o2`, `a7`, `n15`, …)
//! that never collide with symbol-table names. The model name travels in
//! the first comment line, mirroring how `.bench` files carry it in a
//! `# name:` comment.
//!
//! Both parsers are *total*: any malformed input — truncated headers,
//! out-of-range or mis-parity literals, duplicate definitions, bad
//! varint deltas, dangling symbol entries — yields a positioned
//! [`ParseNetlistError`], never a panic. The writers are canonical: for
//! any fixed netlist the emitted bytes are a pure function of the
//! netlist, writing assigns AND variables in topological order, and
//! `write(parse(write(n))) == write(n)` holds in and across both forms.

use crate::{GateKind, Netlist, NodeKind, ParseNetlistError, SignalId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Largest accepted variable index. AIGER files declare their size up
/// front, so a corrupted header could otherwise demand absurd allocations
/// before the first real parse error surfaces; HWMCC-scale circuits sit
/// well below this.
pub const MAX_VARS: u64 = 1 << 24;

type Result<T> = std::result::Result<T, ParseNetlistError>;

fn syntax(line: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError::Syntax { line, message: message.into() }
}

// ---------------------------------------------------------------------
// Shared parsed representation
// ---------------------------------------------------------------------

/// Header counts: `aag`/`aig M I L O A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    maxvar: u64,
    inputs: u64,
    latches: u64,
    outputs: u64,
    ands: u64,
}

/// File contents after section parsing, before netlist construction.
/// Identical for both forms, so all semantic validation lives in one
/// place ([`build_netlist`]).
#[derive(Debug, Default)]
struct Sections {
    maxvar: u64,
    /// Input literals in declaration order, with their source line.
    inputs: Vec<(u64, usize)>,
    /// `(lhs, next, reset, line)` per latch.
    latches: Vec<(u64, u64, bool, usize)>,
    /// Output literals in declaration order, with their source line.
    outputs: Vec<(u64, usize)>,
    /// `(lhs, rhs0, rhs1, line)` per AND gate.
    ands: Vec<(u64, u64, u64, usize)>,
    /// Symbol table entries: `(category, position, name, line)`.
    symbols: Vec<(char, usize, String, usize)>,
    /// First comment line, doubling as the model name.
    model_name: Option<String>,
}

fn parse_header(line: &str, lineno: usize, binary: bool) -> Result<Header> {
    let mut it = line.split_ascii_whitespace();
    let magic = it.next().unwrap_or("");
    let expect = if binary { "aig" } else { "aag" };
    if magic != expect {
        return Err(syntax(lineno, format!("expected `{expect}` header, found `{magic}`")));
    }
    let mut field = |name: &str| -> Result<u64> {
        it.next()
            .ok_or_else(|| syntax(lineno, format!("truncated header: missing {name} count")))?
            .parse::<u64>()
            .map_err(|_| syntax(lineno, format!("header {name} count is not a number")))
    };
    let header = Header {
        maxvar: field("M (maxvar)")?,
        inputs: field("I (input)")?,
        latches: field("L (latch)")?,
        outputs: field("O (output)")?,
        ands: field("A (and)")?,
    };
    // AIGER 1.9 optionally appends B C J F counts (bad states,
    // constraints, justice, fairness). Zero counts are accepted and
    // ignored; nonzero ones describe properties [`Netlist`] cannot
    // represent, so they are rejected rather than silently dropped.
    for (extra, name) in it.zip(["B (bad)", "C (constraint)", "J (justice)", "F (fairness)"]) {
        let value: u64 = extra
            .parse()
            .map_err(|_| syntax(lineno, format!("header {name} count is not a number")))?;
        if value != 0 {
            return Err(syntax(
                lineno,
                format!("unsupported AIGER 1.9 section: {name} count is {value}"),
            ));
        }
    }
    if header.maxvar > MAX_VARS {
        return Err(syntax(
            lineno,
            format!("header declares {} variables, above the supported {MAX_VARS}", header.maxvar),
        ));
    }
    let used = header.inputs + header.latches + header.ands;
    if used > header.maxvar {
        return Err(syntax(
            lineno,
            format!(
                "header maxvar {} is smaller than inputs + latches + ands = {used}",
                header.maxvar
            ),
        ));
    }
    if binary && used != header.maxvar {
        return Err(syntax(
            lineno,
            format!("binary header requires maxvar = I + L + A, got {} != {used}", header.maxvar),
        ));
    }
    Ok(header)
}

/// Parses one whitespace-separated sequence of numbers, requiring an
/// exact field count between `min` and `max`.
fn parse_numbers(line: &str, lineno: usize, what: &str, min: usize, max: usize) -> Result<Vec<u64>> {
    let mut out = Vec::with_capacity(max);
    for tok in line.split_ascii_whitespace() {
        if out.len() == max {
            return Err(syntax(lineno, format!("{what} line has more than {max} fields")));
        }
        out.push(
            tok.parse::<u64>()
                .map_err(|_| syntax(lineno, format!("{what} line: `{tok}` is not a literal")))?,
        );
    }
    if out.len() < min {
        return Err(syntax(
            lineno,
            format!("{what} line has {} fields, expected at least {min}", out.len()),
        ));
    }
    Ok(out)
}

/// Decodes a latch reset field per AIGER 1.9: `0`, `1`, or the latch's
/// own literal meaning "uninitialized" (unsupported here).
fn parse_reset(reset: u64, lhs: u64, lineno: usize) -> Result<bool> {
    match reset {
        0 => Ok(false),
        1 => Ok(true),
        r if r == lhs => Err(syntax(
            lineno,
            "uninitialized latch reset (reset literal equals the latch literal) is unsupported",
        )),
        r => Err(syntax(lineno, format!("latch reset must be 0, 1, or the latch literal, got {r}"))),
    }
}

/// Parses a symbol-table or comment line. Returns `false` once the
/// comment section starts (everything after it is free-form).
fn parse_symbol_line(
    line: &str,
    lineno: usize,
    header: &Header,
    sections: &mut Sections,
) -> Result<bool> {
    if line == "c" {
        return Ok(false);
    }
    let mut chars = line.chars();
    let category = chars.next().ok_or_else(|| syntax(lineno, "empty symbol line"))?;
    let count = match category {
        'i' => header.inputs,
        'l' => header.latches,
        'o' => header.outputs,
        other => {
            return Err(syntax(
                lineno,
                format!("expected symbol entry (i/l/o) or comment section `c`, found `{other}`"),
            ))
        }
    };
    let rest = chars.as_str();
    let (pos, name) = rest
        .split_once(' ')
        .ok_or_else(|| syntax(lineno, "symbol entry needs `<category><position> <name>`"))?;
    let pos: u64 = pos
        .parse()
        .map_err(|_| syntax(lineno, format!("symbol position `{pos}` is not a number")))?;
    if pos >= count {
        return Err(syntax(
            lineno,
            format!("symbol `{category}{pos}` is out of range (section has {count} entries)"),
        ));
    }
    if name.is_empty() {
        return Err(syntax(lineno, "empty symbol name"));
    }
    if sections.symbols.iter().any(|&(c, p, _, _)| c == category && p == pos as usize) {
        return Err(syntax(lineno, format!("duplicate symbol entry `{category}{pos}`")));
    }
    sections.symbols.push((category, pos as usize, name.to_string(), lineno));
    Ok(true)
}

// ---------------------------------------------------------------------
// ASCII parser
// ---------------------------------------------------------------------

/// Parses ASCII AIGER (`aag`) text into a [`Netlist`].
///
/// # Errors
///
/// Returns a positioned [`ParseNetlistError`] on the first malformed
/// line, out-of-range literal, duplicate definition, unsupported
/// reset/section, or structural violation (combinational cycle through
/// the AND graph).
pub fn parse_ascii(text: &str) -> Result<Netlist> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (header_line, first) =
        lines.next().ok_or_else(|| syntax(1, "empty file: missing `aag` header"))?;
    let header = parse_header(first, header_line, false)?;
    let mut sections = Sections { maxvar: header.maxvar, ..Default::default() };

    let mut next_line = |what: &str| -> Result<(usize, &str)> {
        lines
            .next()
            .ok_or_else(|| syntax(header_line, format!("file truncated: missing {what} line")))
    };
    for _ in 0..header.inputs {
        let (lineno, line) = next_line("input")?;
        let nums = parse_numbers(line, lineno, "input", 1, 1)?;
        sections.inputs.push((nums[0], lineno));
    }
    for _ in 0..header.latches {
        let (lineno, line) = next_line("latch")?;
        let nums = parse_numbers(line, lineno, "latch", 2, 3)?;
        let reset = if nums.len() == 3 { parse_reset(nums[2], nums[0], lineno)? } else { false };
        sections.latches.push((nums[0], nums[1], reset, lineno));
    }
    for _ in 0..header.outputs {
        let (lineno, line) = next_line("output")?;
        let nums = parse_numbers(line, lineno, "output", 1, 1)?;
        sections.outputs.push((nums[0], lineno));
    }
    for _ in 0..header.ands {
        let (lineno, line) = next_line("and")?;
        let nums = parse_numbers(line, lineno, "and", 3, 3)?;
        sections.ands.push((nums[0], nums[1], nums[2], lineno));
    }
    let mut in_symbols = true;
    for (lineno, line) in lines {
        if in_symbols {
            in_symbols = parse_symbol_line(line, lineno, &header, &mut sections)?;
        } else if sections.model_name.is_none() {
            sections.model_name = Some(line.to_string());
        }
    }
    build_netlist(sections)
}

// ---------------------------------------------------------------------
// Binary parser
// ---------------------------------------------------------------------

/// Byte cursor over a binary AIGER file that keeps a 1-based line count
/// so errors in the text-like sections (header, latches, outputs,
/// symbols) carry real line numbers; inside the AND blob the line of the
/// blob's start is reported together with the failing gate index.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0, line: 1 }
    }

    /// Reads up to (and consumes) the next `\n`, returning the line as
    /// UTF-8 text with its 1-based line number. A final line terminated
    /// by end-of-file instead of a newline is accepted.
    fn text_line(&mut self, what: &str) -> Result<(usize, &'a str)> {
        if self.pos >= self.bytes.len() {
            return Err(syntax(self.line, format!("file truncated: missing {what} line")));
        }
        let start = self.pos;
        let end = self.bytes[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| start + i)
            .unwrap_or(self.bytes.len());
        let lineno = self.line;
        self.pos = (end + 1).min(self.bytes.len() + 1);
        self.line += 1;
        std::str::from_utf8(&self.bytes[start..end])
            .map(|s| (lineno, s))
            .map_err(|_| syntax(lineno, format!("{what} line is not valid UTF-8")))
    }

    /// Decodes one LEB128-style varint delta (7 data bits per byte, MSB
    /// set on continuation bytes).
    fn varint(&mut self, and_index: u64) -> Result<u64> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let &byte = self.bytes.get(self.pos).ok_or_else(|| {
                syntax(self.line, format!("truncated varint delta in AND gate #{and_index}"))
            })?;
            self.pos += 1;
            if shift >= 63 {
                return Err(syntax(
                    self.line,
                    format!("varint delta overflows in AND gate #{and_index}"),
                ));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Parses binary AIGER (`aig`) bytes into a [`Netlist`].
///
/// # Errors
///
/// Returns a positioned [`ParseNetlistError`] on the first malformed
/// section, truncated or overflowing varint delta, out-of-range literal,
/// unsupported reset, or structural violation.
pub fn parse_binary(bytes: &[u8]) -> Result<Netlist> {
    let mut cursor = Cursor::new(bytes);
    let (header_line, first) = cursor.text_line("`aig` header")?;
    let header = parse_header(first, header_line, true)?;
    let mut sections = Sections { maxvar: header.maxvar, ..Default::default() };

    // Inputs are implicit: variables 1..=I.
    for i in 0..header.inputs {
        sections.inputs.push((2 * (i + 1), header_line));
    }
    for i in 0..header.latches {
        let lhs = 2 * (header.inputs + i + 1);
        let (lineno, line) = cursor.text_line("latch")?;
        let nums = parse_numbers(line, lineno, "latch", 1, 2)?;
        let reset = if nums.len() == 2 { parse_reset(nums[1], lhs, lineno)? } else { false };
        sections.latches.push((lhs, nums[0], reset, lineno));
    }
    for _ in 0..header.outputs {
        let (lineno, line) = cursor.text_line("output")?;
        let nums = parse_numbers(line, lineno, "output", 1, 1)?;
        sections.outputs.push((nums[0], lineno));
    }
    // The AND blob: gate i has implicit lhs 2(I+L+1+i) and stores
    // delta0 = lhs - rhs0, delta1 = rhs0 - rhs1 with lhs > rhs0 >= rhs1.
    let blob_line = cursor.line;
    for i in 0..header.ands {
        let lhs = 2 * (header.inputs + header.latches + 1 + i);
        let delta0 = cursor.varint(i)?;
        let delta1 = cursor.varint(i)?;
        if delta0 == 0 || delta0 > lhs {
            return Err(syntax(
                blob_line,
                format!("AND gate #{i}: delta0 {delta0} breaks lhs {lhs} > rhs0"),
            ));
        }
        let rhs0 = lhs - delta0;
        if delta1 > rhs0 {
            return Err(syntax(
                blob_line,
                format!("AND gate #{i}: delta1 {delta1} breaks rhs0 {rhs0} >= rhs1"),
            ));
        }
        sections.ands.push((lhs, rhs0, rhs0 - delta1, blob_line));
    }
    cursor.line = blob_line;
    let mut in_symbols = true;
    while cursor.pos < cursor.bytes.len() {
        let (lineno, line) = cursor.text_line("symbol")?;
        if in_symbols {
            in_symbols = parse_symbol_line(line, lineno, &header, &mut sections)?;
        } else if sections.model_name.is_none() {
            sections.model_name = Some(line.to_string());
        }
    }
    build_netlist(sections)
}

/// Parses either AIGER form, sniffing the magic (`aag` vs `aig`) from
/// the first bytes.
///
/// # Errors
///
/// Returns a positioned [`ParseNetlistError`]; an unrecognized magic is
/// a line-1 syntax error.
pub fn parse_bytes(bytes: &[u8]) -> Result<Netlist> {
    if bytes.starts_with(b"aig ") || bytes.starts_with(b"aig\t") {
        parse_binary(bytes)
    } else if bytes.starts_with(b"aag ") || bytes.starts_with(b"aag\t") {
        parse_ascii(
            std::str::from_utf8(bytes)
                .map_err(|_| syntax(1, "ASCII AIGER file is not valid UTF-8"))?,
        )
    } else {
        Err(syntax(1, "not an AIGER file: expected `aag` or `aig` magic"))
    }
}

// ---------------------------------------------------------------------
// Netlist construction (shared by both parsers)
// ---------------------------------------------------------------------

/// What defines an AIG variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarDef {
    Input(usize),
    Latch(usize),
    And(usize),
}

fn build_netlist(sections: Sections) -> Result<Netlist> {
    // Map every defined variable; duplicates and parity errors surface
    // with the line of the offending definition.
    let mut defs: HashMap<u64, VarDef> = HashMap::new();
    let mut define = |lit: u64, def: VarDef, what: &str, line: usize| -> Result<u64> {
        if lit <= 1 || !lit.is_multiple_of(2) {
            return Err(syntax(
                line,
                format!("{what} literal {lit} must be an even non-constant literal"),
            ));
        }
        let var = lit / 2;
        if var > sections.maxvar {
            return Err(syntax(
                line,
                format!("{what} literal {lit} exceeds maxvar {} (max literal {})",
                    sections.maxvar, 2 * sections.maxvar + 1),
            ));
        }
        if defs.insert(var, def).is_some() {
            return Err(syntax(line, format!("duplicate definition of variable {var} ({what} literal {lit})")));
        }
        Ok(var)
    };
    let mut input_vars = Vec::with_capacity(sections.inputs.len());
    for (i, &(lit, line)) in sections.inputs.iter().enumerate() {
        input_vars.push(define(lit, VarDef::Input(i), "input", line)?);
    }
    let mut latch_vars = Vec::with_capacity(sections.latches.len());
    for (i, &(lhs, _, _, line)) in sections.latches.iter().enumerate() {
        latch_vars.push(define(lhs, VarDef::Latch(i), "latch", line)?);
    }
    let mut and_vars = Vec::with_capacity(sections.ands.len());
    for (i, &(lhs, _, _, line)) in sections.ands.iter().enumerate() {
        and_vars.push(define(lhs, VarDef::And(i), "AND", line)?);
    }
    let check_ref = |lit: u64, line: usize| -> Result<()> {
        let var = lit / 2;
        if var > sections.maxvar {
            return Err(syntax(
                line,
                format!("literal {lit} exceeds maxvar {} (max literal {})",
                    sections.maxvar, 2 * sections.maxvar + 1),
            ));
        }
        if var != 0 && !defs.contains_key(&var) {
            return Err(syntax(line, format!("literal {lit} references undefined variable {var}")));
        }
        Ok(())
    };
    for &(_, next, _, line) in &sections.latches {
        check_ref(next, line)?;
    }
    for &(lit, line) in &sections.outputs {
        check_ref(lit, line)?;
    }
    for &(_, rhs0, rhs1, line) in &sections.ands {
        check_ref(rhs0, line)?;
        check_ref(rhs1, line)?;
    }

    // Resolve names: symbol-table entries first (their namespace must be
    // collision-free), then deterministic fallbacks for everything else.
    let mut input_names: Vec<Option<(String, usize)>> = vec![None; sections.inputs.len()];
    let mut latch_names: Vec<Option<(String, usize)>> = vec![None; sections.latches.len()];
    let mut output_names: Vec<Option<(String, usize)>> = vec![None; sections.outputs.len()];
    for (category, pos, name, line) in sections.symbols {
        if name.contains(['(', ')', '=', '#']) {
            // These characters are structural in the `.bench`/BLIF
            // writers this netlist may be serialized back through.
            return Err(syntax(line, format!("symbol name `{name}` contains reserved punctuation")));
        }
        let slot = match category {
            'i' => &mut input_names[pos],
            'l' => &mut latch_names[pos],
            _ => &mut output_names[pos],
        };
        *slot = Some((name, line));
    }
    // Inputs and latches share the netlist's signal namespace; outputs
    // live in their own (an output may legally be named after its
    // driver), but two outputs sharing a name would collide in the
    // `.bench`/BLIF writers.
    let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (name, line) in input_names.iter().chain(latch_names.iter()).flatten() {
        if !taken.insert(name.clone()) {
            return Err(ParseNetlistError::DuplicateName { name: name.clone(), line: *line });
        }
    }
    {
        let mut seen = std::collections::HashSet::new();
        for (name, line) in output_names.iter().flatten() {
            if !seen.insert(name.clone()) {
                return Err(ParseNetlistError::DuplicateName { name: name.clone(), line: *line });
            }
        }
    }
    let fresh = |base: String, taken: &mut std::collections::HashSet<String>| -> String {
        if taken.insert(base.clone()) {
            return base;
        }
        let mut k = 0usize;
        loop {
            let candidate = format!("{base}_{k}");
            if taken.insert(candidate.clone()) {
                return candidate;
            }
            k += 1;
        }
    };

    // Build the netlist: inputs, latches, then ANDs in dependency order
    // (ASCII files may list them in any order), materializing NOT gates
    // for negated literals on first use.
    let mut n = Netlist::new(sections.model_name.as_deref().unwrap_or("aiger"));
    let mut sig_of_var: HashMap<u64, SignalId> = HashMap::new();
    for (i, &var) in input_vars.iter().enumerate() {
        let name = match input_names[i].take() {
            Some((name, _)) => name,
            None => fresh(format!("i{i}"), &mut taken),
        };
        sig_of_var.insert(var, n.add_input(name));
    }
    for (i, &var) in latch_vars.iter().enumerate() {
        let name = match latch_names[i].take() {
            Some((name, _)) => name,
            None => fresh(format!("l{i}"), &mut taken),
        };
        sig_of_var.insert(var, n.add_latch(name, sections.latches[i].2));
    }
    let mut consts: [Option<SignalId>; 2] = [None, None];
    let mut nots: HashMap<SignalId, SignalId> = HashMap::new();
    // Iterative strict-literal resolution: `stack` holds AND indices
    // whose gate is still missing; a grey mark detects cycles.
    let and_index_of_var: HashMap<u64, usize> =
        and_vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut visiting = vec![false; sections.ands.len()];
    for start in 0..sections.ands.len() {
        if sig_of_var.contains_key(&and_vars[start]) {
            continue;
        }
        let mut stack = vec![start];
        while let Some(&i) = stack.last() {
            let (_, rhs0, rhs1, line) = sections.ands[i];
            if sig_of_var.contains_key(&and_vars[i]) {
                visiting[i] = false;
                stack.pop();
                continue;
            }
            visiting[i] = true;
            let mut blocked = false;
            for rhs in [rhs0, rhs1] {
                let var = rhs / 2;
                if var == 0 || sig_of_var.contains_key(&var) {
                    continue;
                }
                let dep = and_index_of_var[&var];
                if visiting[dep] {
                    return Err(ParseNetlistError::CombinationalCycle(format!(
                        "variable {var} (AND defined from line {line})"
                    )));
                }
                stack.push(dep);
                blocked = true;
            }
            if blocked {
                continue;
            }
            // Both operands resolvable now.
            let mut operand = |lit: u64| -> SignalId {
                let base = if lit / 2 == 0 {
                    *consts[0].get_or_insert_with(|| {
                        let name = fresh("c0".to_string(), &mut taken);
                        n.add_const(name, false)
                    })
                } else {
                    sig_of_var[&(lit / 2)]
                };
                if lit.is_multiple_of(2) {
                    base
                } else if let Some(&inv) = nots.get(&base) {
                    inv
                } else {
                    let name = fresh(format!("n{lit}"), &mut taken);
                    let inv = n.add_gate(name, GateKind::Not, vec![base]);
                    nots.insert(base, inv);
                    nots.insert(inv, base);
                    inv
                }
            };
            let a = operand(rhs0);
            let b = operand(rhs1);
            let name = fresh(format!("a{}", and_vars[i]), &mut taken);
            let gate = n.add_gate(name, GateKind::And, vec![a, b]);
            sig_of_var.insert(and_vars[i], gate);
            visiting[i] = false;
            stack.pop();
        }
    }
    // Literal resolution for latch-next and output positions, where
    // every variable now has a signal.
    let mut resolve = |n: &mut Netlist, lit: u64| -> SignalId {
        let base = if lit / 2 == 0 {
            *consts[0].get_or_insert_with(|| {
                let name = fresh("c0".to_string(), &mut taken);
                n.add_const(name, false)
            })
        } else {
            sig_of_var[&(lit / 2)]
        };
        if lit.is_multiple_of(2) {
            base
        } else if let Some(&inv) = nots.get(&base) {
            inv
        } else {
            let name = fresh(format!("n{lit}"), &mut taken);
            let inv = n.add_gate(name, GateKind::Not, vec![base]);
            nots.insert(base, inv);
            nots.insert(inv, base);
            inv
        }
    };
    for (i, &(_, next, _, _)) in sections.latches.iter().enumerate() {
        let sig = resolve(&mut n, next);
        let latch = sig_of_var[&latch_vars[i]];
        n.set_latch_next(latch, sig);
    }
    for (i, &(lit, _)) in sections.outputs.iter().enumerate() {
        let sig = resolve(&mut n, lit);
        let name = match output_names[i].take() {
            Some((name, _)) => name,
            None => {
                // Outputs have their own namespace; default names only
                // avoid colliding with *other explicit output names*.
                let mut base = format!("o{i}");
                let mut k = 0usize;
                while output_names.iter().flatten().any(|(e, _)| e == &base) {
                    base = format!("o{i}_{k}");
                    k += 1;
                }
                base
            }
        };
        n.add_output(name, sig);
    }
    n.validate()?;
    Ok(n)
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

/// Literal assignment for a netlist about to be serialized: inputs are
/// variables `1..=I`, latches `I+1..=I+L`, AND gates follow in
/// topological order. `Not`/`Buf` gates and constants fold into
/// literals.
struct Encoding {
    /// Literal per signal index (`u64::MAX` = not yet resolved).
    lit: Vec<u64>,
    /// AND gates in emission (variable) order.
    ands: Vec<SignalId>,
    maxvar: u64,
}

impl Encoding {
    fn new(n: &Netlist) -> Encoding {
        let order = n.topo_order().expect("writing an invalid netlist");
        let mut enc = Encoding {
            lit: vec![u64::MAX; n.num_signals()],
            ands: Vec::new(),
            maxvar: 0,
        };
        let mut var = 0u64;
        for &i in n.inputs() {
            var += 1;
            enc.lit[i.index()] = 2 * var;
        }
        for &l in n.latches() {
            var += 1;
            enc.lit[l.index()] = 2 * var;
        }
        for s in n.signals() {
            if let NodeKind::Const(value) = n.kind(s) {
                enc.lit[s.index()] = u64::from(value);
            }
        }
        // Topological order guarantees every gate's fanins resolve
        // before the gate itself; Not/Buf alias instead of numbering.
        for &g in &order {
            let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
            match kind {
                GateKind::And => {
                    assert_eq!(
                        n.fanins(g).len(),
                        2,
                        "AIGER writer requires two-input ANDs (run aig::to_aig first)"
                    );
                    var += 1;
                    enc.lit[g.index()] = 2 * var;
                    enc.ands.push(g);
                }
                GateKind::Not => {
                    enc.lit[g.index()] = enc.lit[n.fanins(g)[0].index()] ^ 1;
                }
                GateKind::Buf => {
                    enc.lit[g.index()] = enc.lit[n.fanins(g)[0].index()];
                }
                other => panic!(
                    "AIGER writer requires an and/inverter netlist, found {other} (run aig::to_aig first)"
                ),
            }
        }
        enc.maxvar = var;
        enc
    }

    fn lit(&self, s: SignalId) -> u64 {
        let lit = self.lit[s.index()];
        debug_assert_ne!(lit, u64::MAX, "unresolved literal");
        lit
    }
}

/// Returns `n` if it is already an and/inverter netlist (only two-input
/// `And`, `Not`, and `Buf` gates), or its [`crate::aig::to_aig`]
/// lowering otherwise.
fn as_aig(n: &Netlist) -> std::borrow::Cow<'_, Netlist> {
    let is_aig = n.signals().all(|s| match n.kind(s) {
        NodeKind::Gate(GateKind::And) => n.fanins(s).len() == 2,
        NodeKind::Gate(GateKind::Not | GateKind::Buf) => true,
        NodeKind::Gate(_) => false,
        _ => true,
    });
    if is_aig {
        std::borrow::Cow::Borrowed(n)
    } else {
        std::borrow::Cow::Owned(crate::aig::to_aig(n))
    }
}

fn symbol_table(n: &Netlist) -> String {
    let mut out = String::new();
    for (i, &s) in n.inputs().iter().enumerate() {
        let _ = writeln!(out, "i{i} {}", n.signal_name(s));
    }
    for (i, &l) in n.latches().iter().enumerate() {
        let _ = writeln!(out, "l{i} {}", n.signal_name(l));
    }
    for (i, (name, _)) in n.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{i} {name}");
    }
    let _ = writeln!(out, "c\n{}", n.name());
    out
}

/// Serializes a netlist as ASCII AIGER (`aag`). Netlists containing
/// gates other than two-input AND / NOT / BUF are lowered through
/// [`crate::aig::to_aig`] first; the interface (inputs, latches with
/// reset values, named outputs) is preserved either way. The output is
/// canonical: AND variables are numbered in topological order and the
/// full symbol table plus a comment carrying the model name are always
/// emitted, so `write_ascii(parse(write_ascii(n))) == write_ascii(n)`.
///
/// # Panics
///
/// Panics if the netlist fails [`Netlist::validate`].
pub fn write_ascii(n: &Netlist) -> String {
    n.validate().expect("writing an invalid netlist");
    let n = as_aig(n);
    let enc = Encoding::new(&n);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {} {} {} {} {}",
        enc.maxvar,
        n.num_inputs(),
        n.num_latches(),
        n.num_outputs(),
        enc.ands.len()
    );
    for &i in n.inputs() {
        let _ = writeln!(out, "{}", enc.lit(i));
    }
    for &l in n.latches() {
        let next = enc.lit(n.latch_next(l).expect("validated"));
        if n.latch_init(l) {
            let _ = writeln!(out, "{} {next} 1", enc.lit(l));
        } else {
            let _ = writeln!(out, "{} {next}", enc.lit(l));
        }
    }
    for (_, s) in n.outputs() {
        let _ = writeln!(out, "{}", enc.lit(*s));
    }
    for &g in &enc.ands {
        let lhs = enc.lit(g);
        let (a, b) = (enc.lit(n.fanins(g)[0]), enc.lit(n.fanins(g)[1]));
        // Canonical operand order matches the binary form's rhs0 >= rhs1.
        let (rhs0, rhs1) = if a >= b { (a, b) } else { (b, a) };
        let _ = writeln!(out, "{lhs} {rhs0} {rhs1}");
    }
    out.push_str(&symbol_table(&n));
    out
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Serializes a netlist as binary AIGER (`aig`); see [`write_ascii`] for
/// the lowering and canonicality contract, which holds across forms:
/// `parse` of either serialization re-emits byte-identically in both.
///
/// # Panics
///
/// Panics if the netlist fails [`Netlist::validate`].
pub fn write_binary(n: &Netlist) -> Vec<u8> {
    n.validate().expect("writing an invalid netlist");
    let n = as_aig(n);
    let enc = Encoding::new(&n);
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} {} {} {}\n",
            enc.maxvar,
            n.num_inputs(),
            n.num_latches(),
            n.num_outputs(),
            enc.ands.len()
        )
        .as_bytes(),
    );
    for &l in n.latches() {
        let next = enc.lit(n.latch_next(l).expect("validated"));
        if n.latch_init(l) {
            out.extend_from_slice(format!("{next} 1\n").as_bytes());
        } else {
            out.extend_from_slice(format!("{next}\n").as_bytes());
        }
    }
    for (_, s) in n.outputs() {
        out.extend_from_slice(format!("{}\n", enc.lit(*s)).as_bytes());
    }
    for &g in &enc.ands {
        let lhs = enc.lit(g);
        let (a, b) = (enc.lit(n.fanins(g)[0]), enc.lit(n.fanins(g)[1]));
        let (rhs0, rhs1) = if a >= b { (a, b) } else { (b, a) };
        debug_assert!(lhs > rhs0, "AND literal must exceed its operands");
        push_varint(&mut out, lhs - rhs0);
        push_varint(&mut out, rhs0 - rhs1);
    }
    out.extend_from_slice(symbol_table(&n).as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::random_co_simulation;

    fn toggle() -> Netlist {
        let mut n = Netlist::new("toggle");
        let en = n.add_input("en");
        let q = n.add_latch("q", false);
        let d = n.add_gate("d", GateKind::Xor, vec![en, q]);
        n.set_latch_next(q, d);
        n.add_output("out", q);
        n
    }

    #[test]
    fn parses_minimal_ascii() {
        // Single AND of two inputs, negated output.
        let text = "aag 3 2 0 1 1\n2\n4\n7\n6 4 2\ni0 a\ni1 b\no0 f\n";
        let n = parse_ascii(text).expect("parses");
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_latches(), 0);
        assert_eq!(n.num_outputs(), 1);
        assert!(n.signal("a").is_some());
        assert_eq!(n.outputs()[0].0, "f");
        // f = !(a & b): the output is driven through a NOT gate.
        let (_, sig) = &n.outputs()[0];
        assert!(matches!(n.kind(*sig), NodeKind::Gate(GateKind::Not)));
    }

    #[test]
    fn parses_latch_resets() {
        // Two latches: reset 1 and explicit reset 0, shifting an input.
        let text = "aag 3 1 2 1 0\n2\n4 2 1\n6 4 0\n6\n";
        let n = parse_ascii(text).expect("parses");
        assert_eq!(n.num_latches(), 2);
        let l0 = n.latches()[0];
        let l1 = n.latches()[1];
        assert!(n.latch_init(l0));
        assert!(!n.latch_init(l1));
    }

    #[test]
    fn uninitialized_reset_rejected() {
        let text = "aag 1 0 1 1 0\n2 2 2\n2\n";
        let err = parse_ascii(text).unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 2, ref message }
                if message.contains("uninitialized")),
            "{err}"
        );
    }

    #[test]
    fn truncated_header_rejected() {
        for text in ["", "aag", "aag 1 0", "aag 1 0 0 0", "aig 0 0"] {
            let err = parse_bytes(text.as_bytes()).unwrap_err();
            assert!(matches!(err, ParseNetlistError::Syntax { line: 1, .. }), "{text:?}: {err}");
        }
    }

    #[test]
    fn nonzero_19_sections_rejected() {
        let err = parse_ascii("aag 1 1 0 0 0 1\n2\n4\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 1, ref message }
                if message.contains("B (bad)")),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_literal_rejected() {
        let err = parse_ascii("aag 1 1 0 1 0\n2\n9\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 3, ref message }
                if message.contains("exceeds maxvar")),
            "{err}"
        );
    }

    #[test]
    fn duplicate_latch_definition_rejected() {
        let err = parse_ascii("aag 3 1 2 0 0\n2\n4 2\n4 2\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 4, ref message }
                if message.contains("duplicate definition")),
            "{err}"
        );
    }

    #[test]
    fn undefined_variable_rejected() {
        let err = parse_ascii("aag 3 1 0 1 0\n2\n4\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 3, ref message }
                if message.contains("undefined variable")),
            "{err}"
        );
    }

    #[test]
    fn combinational_cycle_rejected() {
        // Two ANDs referencing each other (legal order-wise in ASCII).
        let text = "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n";
        let err = parse_ascii(text).unwrap_err();
        assert!(matches!(err, ParseNetlistError::CombinationalCycle(_)), "{err}");
    }

    #[test]
    fn ascii_ands_in_any_order() {
        // The deeper AND is listed first; parsing must still succeed.
        let text = "aag 4 2 0 1 2\n2\n4\n8\n8 6 2\n6 4 2\n";
        let n = parse_ascii(text).expect("order-independent");
        assert_eq!(n.num_gates(), 2);
    }

    #[test]
    fn binary_round_trips_handmade_file() {
        // aig 3 2 0 1 1: f = a & b; deltas 2, 2.
        let bytes = b"aig 3 2 0 1 1\n6\n\x02\x02i0 a\ni1 b\no0 f\nc\nand2\n";
        let n = parse_binary(bytes).expect("parses");
        assert_eq!(n.name(), "and2");
        assert_eq!((n.num_inputs(), n.num_gates(), n.num_outputs()), (2, 1, 1));
        assert_eq!(write_binary(&n), bytes.to_vec());
    }

    #[test]
    fn binary_truncated_varint_rejected() {
        let err = parse_binary(b"aig 3 2 0 1 1\n6\n\x82").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { ref message, .. }
                if message.contains("truncated varint")),
            "{err}"
        );
    }

    #[test]
    fn binary_bad_delta_rejected() {
        // delta0 = 9 > lhs 6.
        let err = parse_binary(b"aig 3 2 0 1 1\n6\n\x09\x00").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { ref message, .. }
                if message.contains("delta0")),
            "{err}"
        );
    }

    #[test]
    fn binary_overlong_varint_rejected() {
        let mut bytes = b"aig 3 2 0 1 1\n6\n".to_vec();
        bytes.extend_from_slice(&[0xff; 12]);
        let err = parse_binary(&bytes).unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { ref message, .. }
                if message.contains("overflows")),
            "{err}"
        );
    }

    #[test]
    fn binary_maxvar_mismatch_rejected() {
        let err = parse_binary(b"aig 9 2 0 1 1\n6\n\x02\x02").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 1, ref message }
                if message.contains("maxvar = I + L + A")),
            "{err}"
        );
    }

    #[test]
    fn duplicate_symbol_entry_rejected() {
        let err = parse_ascii("aag 1 1 0 1 0\n2\n2\ni0 a\ni0 b\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 5, ref message }
                if message.contains("duplicate symbol")),
            "{err}"
        );
    }

    #[test]
    fn duplicate_symbol_names_rejected() {
        let err = parse_ascii("aag 2 2 0 0 0\n2\n4\ni0 x\ni1 x\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::DuplicateName { .. }), "{err}");
    }

    #[test]
    fn symbol_position_out_of_range_rejected() {
        let err = parse_ascii("aag 1 1 0 1 0\n2\n2\ni5 a\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 4, ref message }
                if message.contains("out of range")),
            "{err}"
        );
    }

    #[test]
    fn maxvar_holes_are_legal_in_ascii() {
        // M = 9 but only 2 variables in use: the spec allows holes.
        let n = parse_ascii("aag 9 1 0 1 0\n2\n3\n").expect("holes are legal");
        assert_eq!(n.num_inputs(), 1);
        // The re-emission compacts to the used variables.
        assert!(write_ascii(&n).starts_with("aag 1 1 0 1 0\n"));
    }

    #[test]
    fn constant_literals_resolve() {
        // o0 = false literal, o1 = true literal, and = a & !0 (= a).
        let text = "aag 2 1 0 3 1\n2\n0\n1\n4\n4 2 1\n";
        let n = parse_ascii(text).expect("constants are legal");
        assert_eq!(n.num_outputs(), 3);
        let mut sim = crate::sim::Simulator::new(&n);
        let out = sim.eval_comb(&[u64::MAX]);
        assert_eq!(out[0], 0, "literal 0 is constant false");
        assert_eq!(out[1], u64::MAX, "literal 1 is constant true");
        assert_eq!(out[2], u64::MAX, "a & true = a");
    }

    #[test]
    fn round_trip_preserves_behaviour_and_is_stable() {
        let n = toggle();
        let ascii = write_ascii(&n);
        let binary = write_binary(&n);
        let from_ascii = parse_ascii(&ascii).expect("own ascii output parses");
        let from_binary = parse_binary(&binary).expect("own binary output parses");
        assert!(random_co_simulation(&n, &from_ascii, 32, 11));
        assert!(random_co_simulation(&n, &from_binary, 32, 11));
        assert_eq!(from_ascii.name(), "toggle", "model name survives the comment section");
        // Cross-form byte stability: re-emitting either parse result
        // reproduces both serializations exactly.
        assert_eq!(write_ascii(&from_binary), ascii);
        assert_eq!(write_binary(&from_ascii), binary);
        // Reset values survive.
        let mut hot = toggle();
        let q2 = hot.add_latch("hot", true);
        let d = hot.signal("d").unwrap();
        hot.set_latch_next(q2, d);
        hot.add_output("hot_out", q2);
        let back = parse_ascii(&write_ascii(&hot)).unwrap();
        assert!(back.latch_init(back.signal("hot").unwrap()));
    }

    #[test]
    fn writer_lowers_wide_gates() {
        let text = "aag 2 2 0 1 0\n2\n4\n2\ni0 a\ni1 b\no0 f\n";
        let n = parse_ascii(text).unwrap();
        assert_eq!(write_ascii(&n), text.to_string() + "c\naiger\n");
        // A non-AIG netlist lowers transparently.
        let mut wide = Netlist::new("wide");
        let a = wide.add_input("a");
        let b = wide.add_input("b");
        let c = wide.add_input("c");
        let g = wide.add_gate("g", GateKind::Nor, vec![a, b, c]);
        wide.add_output("g", g);
        let back = parse_ascii(&write_ascii(&wide)).expect("lowered output parses");
        assert!(random_co_simulation(&wide, &back, 16, 3));
    }

    #[test]
    fn sniffs_both_forms() {
        let n = toggle();
        assert!(parse_bytes(write_ascii(&n).as_bytes()).is_ok());
        assert!(parse_bytes(&write_binary(&n)).is_ok());
        assert!(matches!(
            parse_bytes(b"INPUT(a)\n"),
            Err(ParseNetlistError::Syntax { line: 1, .. })
        ));
    }

    #[test]
    fn reserved_punctuation_in_symbols_rejected() {
        let err = parse_ascii("aag 1 1 0 0 0\n2\ni0 a(1)\n").unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::Syntax { line: 3, ref message }
                if message.contains("reserved punctuation")),
            "{err}"
        );
    }
}
