//! Fraig-style SAT sweeping: simulation-guided equivalence classes
//! refined by incremental SAT.
//!
//! Structurally distinct but functionally identical nodes survive
//! [`crate::clean`]'s structural hashing — `a·b` built as
//! `¬(¬a + ¬b)` hashes differently, so the synthesis flow decomposes,
//! budgets, and maps the same function twice. This pass removes that
//! redundancy *semantically*, before any BDD is built:
//!
//! 1. **Simulate**: seeded word-parallel random simulation (latch
//!    outputs are cut and driven as free pseudo-inputs) gives every
//!    signal a signature of `words × 64` pattern bits. Signatures are
//!    canonicalized *up to negation* — if pattern 0 is `1` the whole
//!    signature is complemented and the phase recorded — so a node and
//!    its complement land in the same candidate class.
//! 2. **Refine**: one persistent [`Solver`] holds a single Tseitin
//!    frame of the netlist (latches free, like the simulation). Each
//!    class member is checked against its representative with
//!    [`Solver::solve_budgeted_with_assumptions`] under one assumption
//!    (the XOR miter literal), so learnt clauses accumulate across the
//!    whole sweep. An UNSAT verdict proves the pair equal (up to the
//!    recorded phase); a SAT model is a counterexample that is fed
//!    back as a new simulation pattern, splitting *every* affected
//!    class at once on the next round; an out-of-conflicts verdict
//!    leaves the pair **undecided**.
//! 3. **Merge**: proven pairs are substituted (phase-aware, inserting
//!    at most one inverter per representative) in a levelized rebuild
//!    and the result is funnelled through [`crate::clean`], which
//!    erases the now-dead cones and collapses the inverter chains.
//!
//! **Soundness contract**: *undecided = unmerged*. Only UNSAT-proven
//! pairs merge; everything else — SAT refutations, exhausted conflict
//! budgets, governor trips — leaves the original structure in place.
//! The swept netlist is therefore combinationally equivalent to the
//! input at every latch boundary, which implies sequential equivalence
//! (checkable with [`crate::sec::bounded_check_sat`] or
//! [`crate::sim::random_co_simulation`]).
//!
//! The pass runs under a [`ResourceGovernor`]: every pairwise query
//! crosses the `netlist.sweep` fault site and polls for cancellation,
//! and the solver search itself is interruptible at its
//! `sat.propagate` / `sat.reduce_db` checkpoints. [`try_sweep`] is the
//! governed twin; a trip aborts the whole pass and the caller degrades
//! to the unswept netlist.

use crate::clean::clean;
use crate::sec::{encode_gate, frame_lits, SatConsts};
use crate::sim::Simulator;
use crate::{GateKind, Netlist, NodeKind, SignalId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use symbi_bdd::{FaultSite, ResourceExhausted, ResourceGovernor};
use symbi_sat::{BudgetedSolveResult, Lit, SatCheckPoint, Solver};

/// Tuning knobs for one [`sweep`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Initial random-simulation words (64 patterns each).
    pub sim_words: usize,
    /// Maximum cex-driven refinement rounds.
    pub rounds: usize,
    /// Conflict budget per pairwise SAT query; exhausting it leaves the
    /// pair undecided (and unmerged).
    pub conflict_budget: u64,
    /// Seed for the simulation pattern stream.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { sim_words: 4, rounds: 4, conflict_budget: 2_000, seed: 0x5EE9D }
    }
}

/// What one [`sweep`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Candidate classes (≥ 2 members) in the initial partition.
    pub classes: usize,
    /// Pairs proven equivalent and merged.
    pub merges: usize,
    /// Pairwise SAT queries issued.
    pub sat_calls: usize,
    /// SAT counterexamples fed back as simulation patterns.
    pub cex_patterns: usize,
    /// Pairs left unmerged because their conflict budget ran out.
    pub undecided: usize,
    /// Refinement rounds actually run.
    pub rounds: usize,
    /// Gates before / after (after includes the final clean).
    pub gates_before: usize,
    /// Gates surviving the merge and final clean.
    pub gates_after: usize,
}

/// One bit per simulated pattern, canonicalized so pattern 0 is `0`.
type Signature = Vec<u64>;

/// Sweeps `netlist` with an unlimited governor. Same contract as
/// [`try_sweep`], which cannot trip here.
///
/// # Panics
///
/// Panics if the netlist fails [`Netlist::validate`].
pub fn sweep(netlist: &Netlist, options: &SweepOptions) -> (Netlist, SweepReport) {
    try_sweep(netlist, options, &ResourceGovernor::unlimited())
        .expect("unlimited governor cannot trip")
}

/// Governed SAT sweep. Returns the swept netlist (same interface,
/// sequentially equivalent) and a report; an exhausted budget, a
/// deadline, a cancellation, or an injected `netlist.sweep` fault
/// aborts with the cause — the caller keeps the unswept netlist.
///
/// # Panics
///
/// Panics if the netlist fails [`Netlist::validate`].
pub fn try_sweep(
    netlist: &Netlist,
    options: &SweepOptions,
    gov: &ResourceGovernor,
) -> Result<(Netlist, SweepReport), ResourceExhausted> {
    netlist.validate().expect("sweeping an invalid netlist");
    // Entry crossing: the pass is governed from its first instruction,
    // so a chaos cell can kill a sweep that never reaches a pairwise
    // query (duplicate-free netlists included).
    gov.fault_site(FaultSite::NetlistSweep)?;
    gov.poll_interrupt()?;
    let mut report =
        SweepReport { gates_before: netlist.num_gates(), ..Default::default() };
    if netlist.num_gates() == 0 {
        report.gates_after = 0;
        return Ok((netlist.clone(), report));
    }
    let topo = netlist.topo_order().expect("validated netlist is acyclic");

    // Levelized order: non-gates are level 0, a gate sits one above its
    // deepest fanin. A representative always has a strictly smaller
    // (level, position) key than the members merged into it, so the
    // rebuild can substitute in one pass and cycles cannot form.
    let mut level: Vec<usize> = vec![0; netlist.num_signals()];
    let mut pos: Vec<usize> = vec![0; netlist.num_signals()];
    for (i, &g) in topo.iter().enumerate() {
        let l = netlist.fanins(g).iter().map(|f| level[f.index()]).max().unwrap_or(0);
        level[g.index()] = l + 1;
        pos[g.index()] = i + 1;
    }
    let key = |s: SignalId| (level[s.index()], pos[s.index()], s.index());

    // --- Signatures --------------------------------------------------
    // Latches are cut: every pattern drives them with free random words,
    // so signature equality is evidence of *combinational* equivalence
    // over the latch boundary — the condition the merge needs.
    let mut sim = Simulator::new(netlist);
    let num_in = netlist.num_inputs();
    let num_latch = netlist.num_latches();
    let mut rng = options.seed | 1;
    let mut next_word = move || {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut signatures: Vec<Signature> = vec![Vec::new(); netlist.num_signals()];
    let mut phase: Vec<bool> = vec![false; netlist.num_signals()];
    let simulate_word =
        |sim: &mut Simulator, inputs: &[u64], state: &[u64], signatures: &mut Vec<Signature>| {
            sim.set_state(state);
            sim.eval_comb(inputs);
            for s in netlist.signals() {
                signatures[s.index()].push(sim.value(s));
            }
        };
    for _ in 0..options.sim_words.max(1) {
        let inputs: Vec<u64> = (0..num_in).map(|_| next_word()).collect();
        let state: Vec<u64> = (0..num_latch).map(|_| next_word()).collect();
        simulate_word(&mut sim, &inputs, &state, &mut signatures);
    }
    let canonicalize = |signatures: &mut Vec<Signature>, phase: &mut Vec<bool>| {
        for (i, sig) in signatures.iter_mut().enumerate() {
            let p = sig[0] & 1 == 1;
            phase[i] = p;
            if p {
                for w in sig.iter_mut() {
                    *w = !*w;
                }
            }
        }
    };
    // Canonicalization is destructive, so signatures are rebuilt from
    // scratch whenever new patterns arrive (see the cex replay below).
    canonicalize(&mut signatures, &mut phase);

    // --- Persistent solver over one free-latch frame ------------------
    // The interrupt hook mirrors `sec::try_bounded_check_sat`: it
    // records *why* the solve was interrupted so an Unknown verdict can
    // be told apart from an ordinary conflict-budget exhaustion.
    let mut solver = Solver::new();
    let cause: Arc<Mutex<Option<ResourceExhausted>>> = Arc::new(Mutex::new(None));
    let hook = {
        let gov = gov.clone();
        let cause = Arc::clone(&cause);
        move |point| {
            let verdict = match point {
                SatCheckPoint::Propagate => gov
                    .fault_site(FaultSite::SatPropagate)
                    .and_then(|()| gov.poll_interrupt()),
                SatCheckPoint::ReduceDb => gov.fault_site(FaultSite::SatReduceDb),
            };
            match verdict {
                Ok(()) => false,
                Err(e) => {
                    *cause.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                    true
                }
            }
        }
    };
    let mut solver = solver.with_interrupt(hook);
    let mut consts = SatConsts { true_lit: None };
    gov.fault_site(FaultSite::SatEncode)?;
    gov.poll_interrupt()?;
    let input_lits: Vec<Lit> =
        (0..num_in).map(|_| Lit::pos(solver.new_var())).collect();
    let latch_lits: Vec<Lit> =
        (0..num_latch).map(|_| Lit::pos(solver.new_var())).collect();
    let state_lits: HashMap<SignalId, Lit> =
        netlist.latches().iter().copied().zip(latch_lits.iter().copied()).collect();
    let lits = frame_lits(&mut solver, &mut consts, netlist, &topo, &input_lits, &state_lits);

    // --- Cex-driven refinement loop -----------------------------------
    // merged: member → (representative, relative phase). Merged and
    // undecided members are excluded from later rounds.
    let mut merged: HashMap<SignalId, (SignalId, bool)> = HashMap::new();
    let mut undecided: Vec<bool> = vec![false; netlist.num_signals()];
    // Pending counterexamples, one (inputs, state) bool-vector pair each.
    let mut pending_cex: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut first_partition = true;
    for _round in 0..options.rounds.max(1) {
        report.rounds += 1;
        // Partition the unmerged signals by canonical signature. Classes
        // iterate in (level, position) order of their representative so
        // the sweep is deterministic regardless of hash-map layout.
        let mut by_sig: HashMap<&Signature, Vec<SignalId>> = HashMap::new();
        for s in netlist.signals() {
            if merged.contains_key(&s) {
                continue;
            }
            by_sig.entry(&signatures[s.index()]).or_default().push(s);
        }
        let mut classes: Vec<Vec<SignalId>> =
            by_sig.into_values().filter(|c| c.len() >= 2).collect();
        for class in &mut classes {
            class.sort_unstable_by_key(|&s| key(s));
        }
        classes.sort_unstable_by_key(|c| key(c[0]));
        if first_partition {
            report.classes = classes.len();
            first_partition = false;
        }
        let mut progress = false;
        for class in &classes {
            let repr = class[0];
            for &member in &class[1..] {
                if undecided[member.index()] {
                    continue;
                }
                // Only gates can be substituted away; inputs, latches,
                // and constants are interface or already minimal.
                if !matches!(netlist.kind(member), NodeKind::Gate(_)) {
                    continue;
                }
                gov.fault_site(FaultSite::NetlistSweep)?;
                gov.poll_interrupt()?;
                let rel_phase = phase[member.index()] != phase[repr.index()];
                let repr_lit =
                    if rel_phase { !lits[&repr] } else { lits[&repr] };
                let miter =
                    encode_gate(&mut solver, GateKind::Xor, &[lits[&member], repr_lit]);
                report.sat_calls += 1;
                match solver
                    .solve_budgeted_with_assumptions(&[miter], options.conflict_budget.max(1))
                {
                    BudgetedSolveResult::Unsat { .. } => {
                        merged.insert(member, (repr, rel_phase));
                        report.merges += 1;
                        progress = true;
                    }
                    BudgetedSolveResult::Sat => {
                        // Harvest the distinguishing assignment; it will
                        // split every class it can on the next round.
                        // Unconstrained variables default to false.
                        let read = |l: &Lit| {
                            solver.value(l.var()).map(|b| b ^ l.is_neg()).unwrap_or(false)
                        };
                        let ins: Vec<bool> = input_lits.iter().map(read).collect();
                        let st: Vec<bool> = latch_lits.iter().map(read).collect();
                        pending_cex.push((ins, st));
                        report.cex_patterns += 1;
                        progress = true;
                    }
                    BudgetedSolveResult::Unknown => {
                        // A recorded cause means the governor tripped the
                        // solver mid-search: abort the whole pass. A bare
                        // Unknown is the conflict budget — the pair stays
                        // soundly unmerged.
                        if let Some(e) =
                            cause.lock().unwrap_or_else(PoisonError::into_inner).take()
                        {
                            return Err(e);
                        }
                        undecided[member.index()] = true;
                        report.undecided += 1;
                    }
                }
            }
        }
        if pending_cex.is_empty() {
            if !progress {
                break; // fixpoint: nothing merged, nothing split
            }
            continue;
        }
        // Replay the pending counterexamples as fresh simulation words:
        // bit k of each word carries cex k, and any spare bits replicate
        // earlier cexs so the word is fully populated and deterministic.
        for chunk in pending_cex.chunks(64) {
            let bit_of = |k: usize| &chunk[k % chunk.len()];
            let inputs: Vec<u64> = (0..num_in)
                .map(|i| {
                    (0..64).fold(0u64, |w, k| w | (u64::from(bit_of(k).0[i]) << k))
                })
                .collect();
            let state: Vec<u64> = (0..num_latch)
                .map(|j| {
                    (0..64).fold(0u64, |w, k| w | (u64::from(bit_of(k).1[j]) << k))
                })
                .collect();
            // Signatures must be re-canonicalized from raw values, so
            // undo the previous canonicalization before appending.
            for (i, sig) in signatures.iter_mut().enumerate() {
                if phase[i] {
                    for w in sig.iter_mut() {
                        *w = !*w;
                    }
                }
            }
            simulate_word(&mut sim, &inputs, &state, &mut signatures);
            canonicalize(&mut signatures, &mut phase);
        }
        pending_cex.clear();
    }

    // --- Merge -------------------------------------------------------
    let out = if merged.is_empty() {
        netlist.clone()
    } else {
        let rebuilt = rebuild_with_merges(netlist, &merged, &level, &topo);
        debug_assert!(rebuilt.validate().is_ok(), "sweep produced an invalid netlist");
        clean(&rebuilt).0
    };
    report.gates_after = out.num_gates();
    Ok((out, report))
}

/// Rebuilds `n` with every merged member's uses redirected to its
/// representative (through one shared inverter when the phases differ).
/// Gates are emitted in levelized order, so a representative — whose
/// (level, position) key is strictly smaller — always exists in the
/// output before any member or user needs it.
fn rebuild_with_merges(
    n: &Netlist,
    merged: &HashMap<SignalId, (SignalId, bool)>,
    level: &[usize],
    topo: &[SignalId],
) -> Netlist {
    let mut out = Netlist::new(n.name());
    let mut map: HashMap<SignalId, SignalId> = HashMap::new();
    let mut not_of: HashMap<SignalId, SignalId> = HashMap::new();
    for &i in n.inputs() {
        map.insert(i, out.add_input(n.signal_name(i).to_string()));
    }
    for &l in n.latches() {
        map.insert(l, out.add_latch(n.signal_name(l).to_string(), n.latch_init(l)));
    }
    for s in n.signals() {
        if let NodeKind::Const(b) = n.kind(s) {
            map.insert(s, out.add_const(n.signal_name(s).to_string(), b));
        }
    }
    let mut order: Vec<SignalId> = topo.to_vec();
    order.sort_by_key(|&g| level[g.index()]); // stable: ties keep topo order
    for g in order {
        if let Some(&(repr, rel_phase)) = merged.get(&g) {
            let base = map[&repr];
            let target = if rel_phase {
                match not_of.get(&base) {
                    Some(&inv) => inv,
                    None => {
                        let name = out.fresh_name("sweep_n");
                        let inv = out.add_gate(name, GateKind::Not, vec![base]);
                        not_of.insert(base, inv);
                        not_of.insert(inv, base);
                        inv
                    }
                }
            } else {
                base
            };
            map.insert(g, target);
            continue;
        }
        let NodeKind::Gate(kind) = n.kind(g) else { unreachable!("topo holds gates") };
        let fanins: Vec<SignalId> = n.fanins(g).iter().map(|f| map[f]).collect();
        let name = if out.signal(n.signal_name(g)).is_none() {
            n.signal_name(g).to_string()
        } else {
            out.fresh_name("sweep_g")
        };
        map.insert(g, out.add_gate(name, kind, fanins));
    }
    for &l in n.latches() {
        out.set_latch_next(map[&l], map[&n.latch_next(l).expect("validated")]);
    }
    for (name, sig) in n.outputs() {
        out.add_output(name.clone(), map[sig]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::random_co_simulation;
    use std::sync::Arc;
    use symbi_bdd::{FaultKind, FaultPlan};

    /// Two structurally different implementations of `a·b` feeding an
    /// XOR (always 0) plus a genuine output — structural hashing cannot
    /// merge them, SAT sweeping must.
    fn duplicated_and() -> Netlist {
        let mut n = Netlist::new("dup");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate("g1", GateKind::And, vec![a, b]);
        let na = n.add_gate("na", GateKind::Not, vec![a]);
        let nb = n.add_gate("nb", GateKind::Not, vec![b]);
        let g2 = n.add_gate("g2", GateKind::Nor, vec![na, nb]); // ¬(¬a+¬b) = a·b
        let x = n.add_gate("x", GateKind::Xor, vec![g1, g2]); // always 0
        let keep = n.add_gate("keep", GateKind::Or, vec![g1, x]);
        n.add_output("o", keep);
        n
    }

    /// `a·b` against its complement `¬a + ¬b`: same class up to phase.
    fn phase_pair() -> Netlist {
        let mut n = Netlist::new("phase");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate("g1", GateKind::And, vec![a, b]);
        let g2 = n.add_gate("g2", GateKind::Nand, vec![a, b]);
        n.add_output("p", g1);
        n.add_output("q", g2);
        n
    }

    #[test]
    fn duplicate_cones_merge() {
        let n = duplicated_and();
        let (swept, report) = sweep(&n, &SweepOptions::default());
        assert!(report.classes >= 1, "simulation must seed a candidate class");
        assert!(report.merges >= 1, "g2 must merge into g1: {report:?}");
        assert!(report.sat_calls >= 1);
        assert!(
            swept.num_gates() < n.num_gates(),
            "merging must shrink: {} vs {}",
            swept.num_gates(),
            n.num_gates()
        );
        assert!(random_co_simulation(&n, &swept, 64, 7));
    }

    #[test]
    fn phase_opposed_nodes_share_one_class() {
        let n = phase_pair();
        let (swept, report) = sweep(&n, &SweepOptions::default());
        // NAND is AND's complement: canonical phase puts them in one
        // class, and the merged netlist implements one through the other.
        assert!(report.merges >= 1, "{report:?}");
        assert!(random_co_simulation(&n, &swept, 64, 13));
        assert!(swept.num_gates() <= n.num_gates());
    }

    #[test]
    fn inequivalent_lookalikes_split_by_cex() {
        // g1 = a·b and g2 = a·(b + c): with c rarely relevant they can
        // share a signature by luck on few patterns; the SAT cex must
        // split them and nothing may merge.
        let mut n = Netlist::new("split");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate("g1", GateKind::And, vec![a, b]);
        let bc = n.add_gate("bc", GateKind::Or, vec![b, c]);
        let g2 = n.add_gate("g2", GateKind::And, vec![a, bc]);
        let o = n.add_gate("o", GateKind::Xor, vec![g1, g2]);
        n.add_output("o", o);
        // One word of patterns maximizes collision likelihood; the run
        // stays sound regardless of whether a collision happens.
        let opts = SweepOptions { sim_words: 1, ..Default::default() };
        let (swept, _) = sweep(&n, &opts);
        assert!(random_co_simulation(&n, &swept, 64, 21));
    }

    #[test]
    fn latch_boundaries_are_respected() {
        // Sequentially, q1 and q2 hold the same value — but the sweep
        // cuts at latches, so the gates behind them only merge if they
        // are combinationally equal over *free* latch values.
        let mut n = Netlist::new("seq");
        let i = n.add_input("i");
        let q1 = n.add_latch("q1", false);
        let q2 = n.add_latch("q2", false);
        n.set_latch_next(q1, i);
        n.set_latch_next(q2, i);
        let u1 = n.add_gate("u1", GateKind::And, vec![q1, i]);
        let u2 = n.add_gate("u2", GateKind::And, vec![q2, i]);
        let o = n.add_gate("o", GateKind::Xor, vec![u1, u2]);
        n.add_output("o", o);
        let (swept, _) = sweep(&n, &SweepOptions::default());
        // u1/u2 differ combinationally (q1 ≠ q2 as free variables), so
        // behaviour must be preserved either way.
        assert!(random_co_simulation(&n, &swept, 64, 33));
    }

    #[test]
    fn empty_and_gate_free_netlists_pass_through() {
        let mut n = Netlist::new("wires");
        let a = n.add_input("a");
        n.add_output("o", a);
        let (swept, report) = sweep(&n, &SweepOptions::default());
        assert_eq!(report.gates_before, 0);
        assert_eq!(report.merges, 0);
        assert_eq!(swept.num_gates(), 0);
        assert!(random_co_simulation(&n, &swept, 8, 1));
    }

    #[test]
    fn sweep_is_deterministic() {
        let n = duplicated_and();
        let opts = SweepOptions::default();
        let (s1, r1) = sweep(&n, &opts);
        let (s2, r2) = sweep(&n, &opts);
        assert_eq!(crate::bench::write(&s1), crate::bench::write(&s2));
        assert_eq!(r1, r2);
    }

    #[test]
    fn zero_conflict_budget_leaves_everything_undecided_but_sound() {
        let n = duplicated_and();
        let opts = SweepOptions { conflict_budget: 1, rounds: 1, ..Default::default() };
        let (swept, report) = sweep(&n, &opts);
        // With a one-conflict budget the solver may or may not finish;
        // whatever it proves, the output must stay equivalent and every
        // non-proof must be counted, not merged.
        assert_eq!(report.merges + report.undecided + report.cex_patterns, report.sat_calls);
        assert!(random_co_simulation(&n, &swept, 64, 55));
    }

    #[test]
    fn injected_budget_fault_aborts_with_cause() {
        let n = duplicated_and();
        // Occurrence 1 is the pass-entry crossing: the sweep dies before
        // simulating a single word.
        let plan = Arc::new(
            FaultPlan::new(3).with_rule(FaultSite::NetlistSweep, 1, FaultKind::Budget),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let err = try_sweep(&n, &SweepOptions::default(), &gov)
            .expect_err("entry crossing must trip");
        assert_eq!(err, ResourceExhausted::Steps);
        assert!(plan.faults_fired() >= 1);
        // Occurrence 2 is the first pairwise refinement query.
        let plan = Arc::new(
            FaultPlan::new(3).with_rule(FaultSite::NetlistSweep, 2, FaultKind::Budget),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let err = try_sweep(&n, &SweepOptions::default(), &gov)
            .expect_err("first pairwise query must trip");
        assert_eq!(err, ResourceExhausted::Steps);
        assert!(plan.faults_fired() >= 1);
    }

    #[test]
    fn cancelled_governor_stops_the_sweep() {
        let n = duplicated_and();
        let gov = ResourceGovernor::unlimited();
        gov.cancel_handle().cancel();
        let err = try_sweep(&n, &SweepOptions::default(), &gov).expect_err("cancelled");
        assert_eq!(err, ResourceExhausted::Cancelled);
    }

    #[test]
    fn all_gate_kinds_survive_sweeping() {
        let mut n = Netlist::new("kinds");
        let x = n.add_input("x");
        let y = n.add_input("y");
        let z = n.add_input("z");
        let and = n.add_gate("and", GateKind::And, vec![x, y]);
        let or = n.add_gate("or", GateKind::Or, vec![y, z]);
        let xor = n.add_gate("xor", GateKind::Xor, vec![and, or]);
        let nand = n.add_gate("nand", GateKind::Nand, vec![x, z]);
        let nor = n.add_gate("nor", GateKind::Nor, vec![and, z]);
        let xnor = n.add_gate("xnor", GateKind::Xnor, vec![nand, nor]);
        let not = n.add_gate("not", GateKind::Not, vec![xor]);
        let buf = n.add_gate("buf", GateKind::Buf, vec![xnor]);
        let top = n.add_gate("top", GateKind::And, vec![not, buf]);
        n.add_output("o", top);
        let (swept, _) = sweep(&n, &SweepOptions::default());
        assert!(random_co_simulation(&n, &swept, 64, 77));
    }

    #[test]
    fn proptest_swept_netlists_co_simulate_over_256_steps() {
        // Randomized regression across a family of generated netlists:
        // every swept result must be sequentially indistinguishable from
        // its original over ≥256 random steps.
        for seed in 0..12u64 {
            let n = random_netlist(seed);
            let (swept, _) = sweep(&n, &SweepOptions::default());
            assert!(
                random_co_simulation(&n, &swept, 256, seed.wrapping_mul(31) + 1),
                "seed {seed}: swept netlist diverged"
            );
        }
    }

    /// Small random netlist generator biased toward duplicate logic:
    /// half the gates re-derive an earlier function through De Morgan.
    fn random_netlist(seed: u64) -> Netlist {
        let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut n = Netlist::new("rand");
        let mut pool: Vec<SignalId> = (0..4).map(|i| n.add_input(format!("i{i}"))).collect();
        let q = n.add_latch("q", next() & 1 == 1);
        pool.push(q);
        for g in 0..12 {
            let a = pool[(next() as usize) % pool.len()];
            let b = pool[(next() as usize) % pool.len()];
            let s = if next() & 1 == 0 {
                n.add_gate(format!("g{g}"), GateKind::And, vec![a, b])
            } else {
                // De Morgan double of AND: a clone structural hashing
                // cannot see.
                let na = n.add_gate(format!("na{g}"), GateKind::Not, vec![a]);
                let nb = n.add_gate(format!("nb{g}"), GateKind::Not, vec![b]);
                n.add_gate(format!("g{g}"), GateKind::Nor, vec![na, nb])
            };
            pool.push(s);
        }
        let d = pool[pool.len() - 1];
        n.set_latch_next(q, d);
        let o = pool[pool.len() - 2];
        n.add_output("o", o);
        n
    }
}
