//! 64-way bit-parallel sequential simulation.
//!
//! Each signal carries a 64-bit word; bit `i` of every word belongs to
//! simulation pattern `i`, so one pass evaluates 64 input patterns at
//! once. Used by the test suite as a behavioural oracle (e.g. to check
//! that [`crate::clean`] preserves sequential behaviour) and by
//! `symbi-reach` to cross-check reachability over-approximations.

use crate::{Netlist, NodeKind, SignalId};

/// Bit-parallel simulator holding the current latch state for 64
/// simulation patterns.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<SignalId>,
    /// Current value word per signal.
    values: Vec<u64>,
    /// Latch state words (indexed like `netlist.latches()`).
    state: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with every pattern in the initial state.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist) -> Self {
        netlist.validate().expect("simulating an invalid netlist");
        let order = netlist.topo_order().expect("validated netlist is acyclic");
        let state = netlist
            .latches()
            .iter()
            .map(|&l| if netlist.latch_init(l) { u64::MAX } else { 0 })
            .collect();
        Simulator { netlist, order, values: vec![0; netlist.num_signals()], state }
    }

    /// Resets all patterns to the initial state.
    pub fn reset(&mut self) {
        for (word, &l) in self.state.iter_mut().zip(self.netlist.latches()) {
            *word = if self.netlist.latch_init(l) { u64::MAX } else { 0 };
        }
    }

    /// Current state words, one per latch.
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Overrides the current state words (for directed state exploration).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the latch count.
    pub fn set_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Evaluates the combinational logic for the given input words and
    /// advances the latches one clock tick. Returns the output words in
    /// [`Netlist::outputs`] order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input count.
    pub fn step(&mut self, inputs: &[u64]) -> Vec<u64> {
        let outputs = self.eval_comb(inputs);
        // Latch update after the combinational pass.
        let next: Vec<u64> = self
            .netlist
            .latches()
            .iter()
            .map(|&l| self.values[self.netlist.latch_next(l).expect("validated").index()])
            .collect();
        self.state.copy_from_slice(&next);
        outputs
    }

    /// Evaluates combinational logic only (no state advance); returns
    /// output words.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input count.
    pub fn eval_comb(&mut self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.netlist.num_inputs(), "input width mismatch");
        for (&sig, &word) in self.netlist.inputs().iter().zip(inputs) {
            self.values[sig.index()] = word;
        }
        for (&sig, &word) in self.netlist.latches().iter().zip(&self.state) {
            self.values[sig.index()] = word;
        }
        for s in self.netlist.signals() {
            if let NodeKind::Const(v) = self.netlist.kind(s) {
                self.values[s.index()] = if v { u64::MAX } else { 0 };
            }
        }
        let mut fanin_words: Vec<u64> = Vec::with_capacity(8);
        for &g in &self.order {
            fanin_words.clear();
            fanin_words
                .extend(self.netlist.fanins(g).iter().map(|&f| self.values[f.index()]));
            let NodeKind::Gate(kind) = self.netlist.kind(g) else {
                unreachable!("topo order contains only gates");
            };
            self.values[g.index()] = kind.eval_words(&fanin_words);
        }
        self.netlist.outputs().iter().map(|&(_, s)| self.values[s.index()]).collect()
    }

    /// Value word currently held by `signal` (after the last evaluation).
    pub fn value(&self, signal: SignalId) -> u64 {
        self.values[signal.index()]
    }

    /// Evaluates `batch.len()` independent 64-pattern words in one call
    /// (`N×64` patterns total). Element `w` of the batch is an
    /// input-word vector exactly as accepted by [`Simulator::eval_comb`];
    /// the return holds the matching output-word vector per element.
    /// Latch state words are identical for every element and are not
    /// advanced.
    ///
    /// # Panics
    ///
    /// Panics if any element's width differs from the input count.
    pub fn eval_comb_batch(&mut self, batch: &[Vec<u64>]) -> Vec<Vec<u64>> {
        batch.iter().map(|words| self.eval_comb(words)).collect()
    }

    /// Evaluates a seeded random batch of `words` input words (`words×64`
    /// patterns) and hands the simulator to `visit` after each word so
    /// callers can harvest per-signal values via [`Simulator::value`].
    /// The input words are exactly [`seeded_batch`]`(num_inputs, words,
    /// seed)`, so results are reproducible from the seed alone. Returns
    /// the output-word vectors like [`Simulator::eval_comb_batch`].
    pub fn eval_comb_seeded(
        &mut self,
        words: usize,
        seed: u64,
        mut visit: impl FnMut(usize, &Simulator<'_>),
    ) -> Vec<Vec<u64>> {
        let batch = seeded_batch(self.netlist.num_inputs(), words, seed);
        let mut outs = Vec::with_capacity(words);
        for (w, inputs) in batch.iter().enumerate() {
            outs.push(self.eval_comb(inputs));
            visit(w, self);
        }
        outs
    }
}

/// Deterministically expands `seed` into a batch of `words` random
/// input-word vectors (one `u64` per input, 64 patterns per word) using
/// the same xorshift64* stream as [`random_co_simulation`].
pub fn seeded_batch(num_inputs: usize, words: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    };
    (0..words).map(|_| (0..num_inputs).map(|_| next()).collect()).collect()
}

/// Runs `steps` clock cycles of random-input simulation on two netlists
/// with identical interfaces and reports whether every output word agreed
/// on every cycle. A cheap behavioural-equivalence smoke test.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) differ.
pub fn random_co_simulation(
    a: &Netlist,
    b: &Netlist,
    steps: usize,
    seed: u64,
) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input count mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output count mismatch");
    let mut sa = Simulator::new(a);
    let mut sb = Simulator::new(b);
    let mut rng = seed | 1;
    let mut next = move || {
        // xorshift64*
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for _ in 0..steps {
        let inputs: Vec<u64> = (0..a.num_inputs()).map(|_| next()).collect();
        if sa.step(&inputs) != sb.step(&inputs) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn toggle() -> Netlist {
        let mut n = Netlist::new("toggle");
        let en = n.add_input("en");
        let q = n.add_latch("q", false);
        let d = n.add_gate("d", GateKind::Xor, vec![en, q]);
        n.set_latch_next(q, d);
        n.add_output("q_out", q);
        n
    }

    #[test]
    fn toggle_flips_with_enable() {
        let n = toggle();
        let mut sim = Simulator::new(&n);
        // Pattern 0: enable always 1 → q toggles 0,1,0,1...
        // Pattern 1: enable always 0 → q stays 0.
        let en = 0b01;
        let mut qs = Vec::new();
        for _ in 0..4 {
            let out = sim.step(&[en]);
            qs.push(out[0] & 0b11);
        }
        assert_eq!(qs, vec![0b00, 0b01, 0b00, 0b01]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let n = toggle();
        let mut sim = Simulator::new(&n);
        sim.step(&[u64::MAX]);
        assert_ne!(sim.state()[0], 0);
        sim.reset();
        assert_eq!(sim.state()[0], 0);
    }

    #[test]
    fn init_one_latch_starts_high() {
        let mut n = Netlist::new("t");
        let q = n.add_latch("q", true);
        let d = n.add_gate("d", GateKind::Buf, vec![q]);
        n.set_latch_next(q, d);
        n.add_output("o", q);
        let mut sim = Simulator::new(&n);
        let out = sim.step(&[]);
        assert_eq!(out[0], u64::MAX);
    }

    #[test]
    fn co_simulation_detects_difference() {
        let a = toggle();
        let mut b = toggle();
        // Sabotage b: output the complement.
        let q = b.signal("q").unwrap();
        let nq = b.add_gate("nq", GateKind::Not, vec![q]);
        b.set_output_signal(0, nq);
        assert!(!random_co_simulation(&a, &b, 8, 42));
        assert!(random_co_simulation(&a, &a.clone(), 8, 42));
    }

    #[test]
    fn batch_eval_matches_single_word_calls() {
        let n = toggle();
        let batch = seeded_batch(n.num_inputs(), 8, 0xBA7C4);
        assert_eq!(batch.len(), 8);
        let mut sim_batch = Simulator::new(&n);
        let batched = sim_batch.eval_comb_batch(&batch);
        let mut sim_single = Simulator::new(&n);
        let singles: Vec<Vec<u64>> =
            batch.iter().map(|words| sim_single.eval_comb(words)).collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn seeded_eval_is_reproducible_and_visits_every_word() {
        let n = toggle();
        let mut visited = Vec::new();
        let mut sim = Simulator::new(&n);
        let a = sim.eval_comb_seeded(5, 99, |w, s| {
            visited.push((w, s.value(n.signal("d").unwrap())));
        });
        assert_eq!(visited.len(), 5);
        assert_eq!(visited.iter().map(|&(w, _)| w).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        let mut sim2 = Simulator::new(&n);
        let b = sim2.eval_comb_seeded(5, 99, |_, _| {});
        assert_eq!(a, b);
        let mut sim3 = Simulator::new(&n);
        let c = sim3.eval_comb_batch(&seeded_batch(n.num_inputs(), 5, 99));
        assert_eq!(a, c);
    }

    #[test]
    fn constants_evaluate() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let one = n.add_const("one", true);
        let f = n.add_gate("f", GateKind::And, vec![a, one]);
        n.add_output("f", f);
        let mut sim = Simulator::new(&n);
        let out = sim.eval_comb(&[0b1010]);
        assert_eq!(out[0], 0b1010);
    }
}
