//! A BLIF (Berkeley Logic Interchange Format) subset.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.latch`
//! (with optional type/control fields and initial value), `.names` with a
//! single-output cover, `.end`, comments (`#`) and line continuations
//! (`\`). Covers are expanded into AND/OR/NOT gates at parse time, so the
//! in-memory representation stays a plain gate netlist; the writer emits
//! one `.names` block per gate.

use crate::{GateKind, Netlist, NodeKind, ParseNetlistError, SignalId};
use std::collections::HashMap;
use std::fmt::Write as _;

#[derive(Debug)]
struct Cover {
    output: String,
    inputs: Vec<String>,
    /// Rows of (input pattern, output value). Patterns use '0', '1', '-'.
    rows: Vec<(String, bool)>,
    /// 1-based source line of the `.names` directive.
    line: usize,
}

/// Parses BLIF text into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] for malformed directives, inconsistent
/// cover rows, duplicate definitions, or dangling references.
pub fn parse(text: &str) -> Result<Netlist, ParseNetlistError> {
    // Join continuation lines, strip comments.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let no_comment = raw.split('#').next().unwrap_or("");
        let trimmed = no_comment.trim_end();
        if pending.is_empty() {
            pending_line = lineno + 1;
        }
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
        } else {
            pending.push_str(trimmed);
            let whole = std::mem::take(&mut pending);
            if !whole.trim().is_empty() {
                lines.push((pending_line, whole));
            }
        }
    }

    let mut model = String::from("blif");
    let mut input_names: Vec<(String, usize)> = Vec::new();
    let mut output_names: Vec<(String, usize)> = Vec::new();
    // (input, output, init, line)
    let mut latches: Vec<(String, String, bool, usize)> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();

    let mut i = 0;
    while i < lines.len() {
        let (lineno, line) = &lines[i];
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or("");
        let err = |message: String| ParseNetlistError::Syntax { line: *lineno, message };
        match head {
            ".model" => {
                if let Some(name) = tokens.next() {
                    model = name.to_string();
                }
            }
            ".inputs" => input_names.extend(tokens.map(|t| (t.to_string(), *lineno))),
            ".outputs" => output_names.extend(tokens.map(|t| (t.to_string(), *lineno))),
            ".latch" => {
                let fields: Vec<&str> = tokens.collect();
                let (input, output, init) = match fields.len() {
                    2 => (fields[0], fields[1], false),
                    3 => (fields[0], fields[1], fields[2] == "1"),
                    5 => (fields[0], fields[1], fields[4] == "1"),
                    n => return Err(err(format!(".latch takes 2, 3, or 5 fields, got {n}"))),
                };
                latches.push((input.to_string(), output.to_string(), init, *lineno));
            }
            ".names" => {
                let mut names: Vec<String> = tokens.map(str::to_string).collect();
                let output = names.pop().ok_or_else(|| err(".names needs an output".into()))?;
                let mut rows = Vec::new();
                while i + 1 < lines.len() && !lines[i + 1].1.trim_start().starts_with('.') {
                    i += 1;
                    let (rowno, row) = &lines[i];
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pattern, value) = match parts.len() {
                        1 if names.is_empty() => (String::new(), parts[0] == "1"),
                        2 => (parts[0].to_string(), parts[1] == "1"),
                        _ => {
                            return Err(ParseNetlistError::Syntax {
                                line: *rowno,
                                message: format!("malformed cover row `{row}`"),
                            })
                        }
                    };
                    if pattern.len() != names.len() {
                        return Err(ParseNetlistError::Syntax {
                            line: *rowno,
                            message: format!(
                                "cover row width {} does not match {} inputs",
                                pattern.len(),
                                names.len()
                            ),
                        });
                    }
                    rows.push((pattern, value));
                }
                covers.push(Cover { output, inputs: names, rows, line: *lineno });
            }
            ".end" => break,
            ".exdc" | ".subckt" | ".gate" => {
                return Err(err(format!("unsupported BLIF construct `{head}`")))
            }
            _ => return Err(err(format!("unrecognized directive `{head}`"))),
        }
        i += 1;
    }

    // Build the netlist: inputs, latch outputs, then expanded covers.
    let mut n = Netlist::new(model);
    let mut ids: HashMap<String, SignalId> = HashMap::new();
    for (name, line) in &input_names {
        if ids.contains_key(name) {
            return Err(ParseNetlistError::DuplicateName { name: name.clone(), line: *line });
        }
        ids.insert(name.clone(), n.add_input(name.clone()));
    }
    for (_, output, init, line) in &latches {
        if ids.contains_key(output) {
            return Err(ParseNetlistError::DuplicateName {
                name: output.clone(),
                line: *line,
            });
        }
        ids.insert(output.clone(), n.add_latch(output.clone(), *init));
    }
    // A cover redefining an input, a latch output, or another cover's
    // output would collide during expansion; reject it up front.
    {
        let mut cover_outputs: HashMap<&str, usize> = HashMap::new();
        for cover in &covers {
            if ids.contains_key(&cover.output)
                || cover_outputs.insert(cover.output.as_str(), cover.line).is_some()
            {
                return Err(ParseNetlistError::DuplicateName {
                    name: cover.output.clone(),
                    line: cover.line,
                });
            }
        }
    }
    // Expand covers in dependency order: multiple passes until settled
    // (BLIF permits any declaration order).
    let mut remaining: Vec<&Cover> = covers.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|cover| {
            if !cover.inputs.iter().all(|name| ids.contains_key(name)) {
                return true; // try again next pass
            }
            let sig = expand_cover(&mut n, cover, &ids);
            ids.insert(cover.output.clone(), sig);
            false
        });
        if remaining.len() == before {
            // No progress: an input is genuinely undefined (or the covers
            // form a combinational cycle; validation would also catch it).
            let (missing, line) = remaining
                .iter()
                .find_map(|c| {
                    c.inputs
                        .iter()
                        .find(|name| !ids.contains_key(*name) && !remaining.iter().any(|r| &r.output == *name))
                        .map(|name| (name.clone(), c.line))
                })
                .unwrap_or_else(|| (remaining[0].output.clone(), remaining[0].line));
            return Err(ParseNetlistError::UnknownSignal { name: missing, line });
        }
    }
    for (input, output, _, line) in &latches {
        let next = *ids.get(input).ok_or_else(|| ParseNetlistError::UnknownSignal {
            name: input.clone(),
            line: *line,
        })?;
        let latch = ids[output];
        n.set_latch_next(latch, next);
    }
    for (name, line) in &output_names {
        let sig = *ids.get(name).ok_or_else(|| ParseNetlistError::UnknownSignal {
            name: name.clone(),
            line: *line,
        })?;
        n.add_output(name.clone(), sig);
    }
    n.validate()?;
    Ok(n)
}

/// Expands one single-output cover into gates, returning the signal that
/// carries the cover's function under its declared name.
fn expand_cover(n: &mut Netlist, cover: &Cover, ids: &HashMap<String, SignalId>) -> SignalId {
    // Constant cover.
    if cover.inputs.is_empty() {
        let value = cover.rows.iter().any(|&(_, v)| v);
        return n.add_const(cover.output.clone(), value);
    }
    let on_rows: Vec<&(String, bool)> = cover.rows.iter().filter(|&&(_, v)| v).collect();
    let off_rows = cover.rows.len() - on_rows.len();
    // BLIF requires a cover to be all-onset or all-offset; mixed covers are
    // treated as onset rows only (matching common tool behaviour).
    let (rows, complement): (Vec<&String>, bool) = if !on_rows.is_empty() {
        (on_rows.iter().map(|&(p, _)| p).collect(), false)
    } else if off_rows > 0 {
        (cover.rows.iter().map(|(p, _)| p).collect(), true)
    } else {
        // Empty cover = constant 0.
        return n.add_const(cover.output.clone(), false);
    };

    let mut product_signals: Vec<SignalId> = Vec::new();
    for (ri, pattern) in rows.iter().enumerate() {
        let mut literals: Vec<SignalId> = Vec::new();
        for (ci, ch) in pattern.chars().enumerate() {
            let base = ids[&cover.inputs[ci]];
            match ch {
                '1' => literals.push(base),
                '0' => {
                    let inv =
                        n.add_gate(n.fresh_name(&format!("{}_n{ri}_{ci}_", cover.output)), GateKind::Not, vec![base]);
                    literals.push(inv);
                }
                _ => {} // '-' don't care
            }
        }
        let product = match literals.len() {
            0 => {
                // Row of all don't-cares = tautology.
                n.add_const(n.fresh_name(&format!("{}_taut", cover.output)), true)
            }
            1 => literals[0],
            _ => n.add_gate(
                n.fresh_name(&format!("{}_p{ri}_", cover.output)),
                GateKind::And,
                literals,
            ),
        };
        product_signals.push(product);
    }
    match product_signals.len() {
        1 => {
            if complement {
                n.add_gate(cover.output.clone(), GateKind::Not, vec![product_signals[0]])
            } else {
                n.add_gate(cover.output.clone(), GateKind::Buf, vec![product_signals[0]])
            }
        }
        _ => {
            let kind = if complement { GateKind::Nor } else { GateKind::Or };
            n.add_gate(cover.output.clone(), kind, product_signals)
        }
    }
}

/// Serializes a [`Netlist`] to BLIF text, one `.names` block per gate.
pub fn write(n: &Netlist) -> String {
    // Emitted names: a signal whose name is claimed by an output buffer
    // below is renamed, so the buffer never redefines an existing signal.
    let names = n.writer_names();
    let name_of = |s: SignalId| names[s.index()].as_str();
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", n.name());
    let inputs: Vec<&str> = n.inputs().iter().map(|&i| name_of(i)).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<&str> = n.outputs().iter().map(|(name, _)| name.as_str()).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for &l in n.latches() {
        let next = n.latch_next(l).expect("validated netlist");
        let init = u8::from(n.latch_init(l));
        let _ = writeln!(out, ".latch {} {} {init}", name_of(next), name_of(l));
    }
    // Outputs whose name differs from their driving signal need a buffer.
    for (name, sig) in n.outputs() {
        if name != name_of(*sig) {
            let _ = writeln!(out, ".names {} {name}\n1 1", name_of(*sig));
        }
    }
    for s in n.signals() {
        let name = name_of(s);
        match n.kind(s) {
            NodeKind::Const(v) => {
                let _ = writeln!(out, ".names {name}");
                if v {
                    let _ = writeln!(out, "1");
                }
            }
            NodeKind::Gate(kind) => {
                let fanins: Vec<&str> = n.fanins(s).iter().map(|&f| name_of(f)).collect();
                let _ = writeln!(out, ".names {} {name}", fanins.join(" "));
                let k = fanins.len();
                match kind {
                    GateKind::And => {
                        let _ = writeln!(out, "{} 1", "1".repeat(k));
                    }
                    GateKind::Nand => {
                        let _ = writeln!(out, "{} 0", "1".repeat(k));
                    }
                    GateKind::Or => {
                        for i in 0..k {
                            let mut row = vec!['-'; k];
                            row[i] = '1';
                            let _ = writeln!(out, "{} 1", row.iter().collect::<String>());
                        }
                    }
                    GateKind::Nor => {
                        let _ = writeln!(out, "{} 1", "0".repeat(k));
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        // Enumerate parities (gate fanin counts are small).
                        let want_odd = kind == GateKind::Xor;
                        for bits in 0u32..1 << k {
                            let parity = bits.count_ones() % 2 == 1;
                            if parity == want_odd {
                                let row: String = (0..k)
                                    .map(|i| if bits >> i & 1 == 1 { '1' } else { '0' })
                                    .collect();
                                let _ = writeln!(out, "{row} 1");
                            }
                        }
                    }
                    GateKind::Not => {
                        let _ = writeln!(out, "0 1");
                    }
                    GateKind::Buf => {
                        let _ = writeln!(out, "1 1");
                    }
                }
            }
            _ => {}
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::random_co_simulation;

    const SMALL: &str = "\
.model small
.inputs a b
.outputs f
.latch d q 0
.names a q t
11 1
.names t b f
1- 1
-1 1
.names f d
0 1
.end
";

    #[test]
    fn parse_small() {
        let n = parse(SMALL).expect("parses");
        assert_eq!(n.name(), "small");
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_latches(), 1);
        assert_eq!(n.num_outputs(), 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn cover_semantics_or() {
        // f = a + b via two onset rows.
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n1- 1\n-1 1\n.end\n";
        let n = parse(text).unwrap();
        let mut sim = crate::sim::Simulator::new(&n);
        let out = sim.eval_comb(&[0b0011, 0b0101]);
        assert_eq!(out[0] & 0b1111, 0b0111);
    }

    #[test]
    fn offset_cover_complements() {
        // f = NOT(a AND b) via an offset row.
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n";
        let n = parse(text).unwrap();
        let mut sim = crate::sim::Simulator::new(&n);
        let out = sim.eval_comb(&[0b0011, 0b0101]);
        assert_eq!(out[0] & 0b1111, 0b1110);
    }

    #[test]
    fn constant_covers() {
        let text = ".model t\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n";
        let n = parse(text).unwrap();
        let mut sim = crate::sim::Simulator::new(&n);
        let out = sim.eval_comb(&[0]);
        assert_eq!(out[0], u64::MAX);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn round_trip_behaviour_preserved() {
        let n = parse(SMALL).unwrap();
        let text = write(&n);
        let n2 = parse(&text).expect("round trip parses");
        assert!(random_co_simulation(&n, &n2, 16, 7));
    }

    #[test]
    fn bench_netlists_survive_blif_round_trip() {
        let bench_text = "\
INPUT(a)\nINPUT(b)\nOUTPUT(f)\nq = DFF(d)\nx = XOR(a, q)\nf = NAND(x, b)\nd = NOR(f, a)\n";
        let n = crate::bench::parse(bench_text).unwrap();
        let blif_text = write(&n);
        let n2 = parse(&blif_text).expect("round trip parses");
        assert!(random_co_simulation(&n, &n2, 32, 99));
    }

    #[test]
    fn latch_init_values() {
        let text = ".model t\n.inputs a\n.outputs q\n.latch a q 1\n.end\n";
        let n = parse(text).unwrap();
        let q = n.signal("q").unwrap();
        assert!(n.latch_init(q));
        // 5-field form.
        let text5 = ".model t\n.inputs a\n.outputs q\n.latch a q re clk 1\n.end\n";
        let n5 = parse(text5).unwrap();
        assert!(n5.latch_init(n5.signal("q").unwrap()));
    }

    #[test]
    fn undefined_signal_reported() {
        let text = ".model t\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n";
        assert_eq!(
            parse(text).err(),
            Some(ParseNetlistError::UnknownSignal { name: "ghost".into(), line: 4 })
        );
    }

    #[test]
    fn cover_redefining_input_rejected() {
        // Used to panic in expand_cover via the duplicate-name assert.
        let text = ".model t\n.inputs f a\n.outputs f\n.names a f\n1 1\n.end\n";
        assert_eq!(
            parse(text).err(),
            Some(ParseNetlistError::DuplicateName { name: "f".into(), line: 4 })
        );
        // Two covers driving the same name.
        let text2 = ".model t\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n";
        assert_eq!(
            parse(text2).err(),
            Some(ParseNetlistError::DuplicateName { name: "f".into(), line: 6 })
        );
    }

    #[test]
    fn output_name_colliding_with_other_signal_round_trips() {
        // An output named like an unrelated gate: the writer must rename
        // the gate, or the output buffer would redefine it (and the
        // output would rebind to the wrong driver on parse-back).
        let mut n = Netlist::new("collide");
        let a = n.add_input("a");
        let q = n.add_latch("q", false);
        let g = n.add_gate("g", GateKind::Not, vec![a]);
        n.set_latch_next(q, g);
        n.add_output("g", q); // named like the gate, driven by the latch
        n.add_output("o", g);
        n.validate().unwrap();
        let back = parse(&write(&n)).expect("collision-free text");
        assert!(crate::sim::random_co_simulation(&n, &back, 32, 7));
    }

    #[test]
    fn continuation_lines() {
        let text = ".model t\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse(text).unwrap();
        assert_eq!(n.num_inputs(), 2);
    }
}
