//! Extraction of combinational cones as BDDs.
//!
//! A *cone* of a signal is its combinational transitive fanin, cut at
//! primary inputs and latch outputs. [`ConeExtractor`] maps those leaves
//! to BDD variables (caller-controlled layout) and builds the signal's
//! function — the "functional representation for selected signals in terms
//! of their cone inputs" of §3.5.3.

use crate::{Netlist, NodeKind, SignalId};
use std::collections::HashMap;
use symbi_bdd::{Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId};

/// Computes a leaf ordering by depth-first traversal of the combinational
/// fanin from the outputs and next-state functions — the classic
/// fanin-DFS heuristic: leaves that feed the same cone get adjacent BDD
/// variables, which keeps cone BDDs small regardless of how the netlist
/// happens to declare its inputs. Leaves unreachable from any root are
/// appended in declaration order.
pub fn dfs_leaf_order(netlist: &Netlist) -> Vec<SignalId> {
    let mut order = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut roots: Vec<SignalId> = netlist.outputs().iter().map(|&(_, s)| s).collect();
    roots.extend(
        netlist.latches().iter().filter_map(|&l| netlist.latch_next(l)),
    );
    for root in roots {
        // Post-order DFS collecting leaves first-encountered.
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            match netlist.kind(s) {
                NodeKind::Input | NodeKind::Latch { .. } => order.push(s),
                NodeKind::Const(_) => {}
                NodeKind::Gate(_) => {
                    // Push in reverse so the first fanin is visited first.
                    for &f in netlist.fanins(s).iter().rev() {
                        stack.push(f);
                    }
                }
            }
        }
    }
    for &leaf in netlist.inputs().iter().chain(netlist.latches()) {
        if seen.insert(leaf) {
            order.push(leaf);
        }
    }
    order
}

/// Builds BDDs for signals of one netlist inside a caller-provided
/// [`Manager`], caching per-signal results.
#[derive(Debug)]
pub struct ConeExtractor<'a> {
    netlist: &'a Netlist,
    /// Leaf signal → BDD variable.
    var_map: HashMap<SignalId, VarId>,
    cache: HashMap<SignalId, NodeId>,
}

impl<'a> ConeExtractor<'a> {
    /// Creates an extractor with an explicit leaf-to-variable mapping.
    /// Signals absent from `var_map` must not appear as cone leaves of the
    /// signals later queried.
    pub fn new(netlist: &'a Netlist, var_map: HashMap<SignalId, VarId>) -> Self {
        ConeExtractor { netlist, var_map, cache: HashMap::new() }
    }

    /// Convenience constructor: allocates one fresh manager variable per
    /// primary input and latch, in declaration order (inputs first).
    pub fn with_default_layout(netlist: &'a Netlist, m: &mut Manager) -> Self {
        let mut var_map = HashMap::new();
        for &i in netlist.inputs() {
            var_map.insert(i, VarId(m.num_vars() as u32));
            m.new_var();
        }
        for &l in netlist.latches() {
            var_map.insert(l, VarId(m.num_vars() as u32));
            m.new_var();
        }
        ConeExtractor::new(netlist, var_map)
    }

    /// Constructor using the [`dfs_leaf_order`] heuristic for the variable
    /// layout — usually smaller cone BDDs than declaration order.
    pub fn with_dfs_layout(netlist: &'a Netlist, m: &mut Manager) -> Self {
        let mut var_map = HashMap::new();
        for leaf in dfs_leaf_order(netlist) {
            var_map.insert(leaf, VarId(m.num_vars() as u32));
            m.new_var();
        }
        ConeExtractor::new(netlist, var_map)
    }

    /// The leaf-to-variable mapping.
    pub fn var_map(&self) -> &HashMap<SignalId, VarId> {
        &self.var_map
    }

    /// Registers an additional leaf: from now on, cones stop at `s` and
    /// read it as variable `v`. Cones built *before* this call keep their
    /// expanded view of `s` — the intended semantics for cut-point-based
    /// rewriting, where a signal becomes a boundary only after it has been
    /// processed itself.
    pub fn add_leaf(&mut self, m: &mut Manager, s: SignalId, v: VarId) {
        self.var_map.insert(s, v);
        self.cache.insert(s, m.var(v));
    }

    /// BDD variable assigned to a leaf signal, if any.
    pub fn var_of(&self, s: SignalId) -> Option<VarId> {
        self.var_map.get(&s).copied()
    }

    /// Builds (or retrieves) the BDD of `signal`'s combinational cone.
    ///
    /// # Panics
    ///
    /// Panics if the cone reaches a leaf with no assigned variable.
    pub fn bdd(&mut self, m: &mut Manager, signal: SignalId) -> NodeId {
        if let Some(&f) = self.cache.get(&signal) {
            return f;
        }
        // Iterative post-order to survive deep netlists.
        let mut stack: Vec<(SignalId, bool)> = vec![(signal, false)];
        while let Some((s, expanded)) = stack.pop() {
            if self.cache.contains_key(&s) {
                continue;
            }
            match self.netlist.kind(s) {
                NodeKind::Input | NodeKind::Latch { .. } => {
                    let v = *self.var_map.get(&s).unwrap_or_else(|| {
                        panic!(
                            "cone leaf `{}` has no BDD variable assigned",
                            self.netlist.signal_name(s)
                        )
                    });
                    let node = m.var(v);
                    self.cache.insert(s, node);
                }
                NodeKind::Const(b) => {
                    self.cache.insert(s, if b { NodeId::TRUE } else { NodeId::FALSE });
                }
                NodeKind::Gate(kind) => {
                    if expanded {
                        let fanins: Vec<NodeId> =
                            self.netlist.fanins(s).iter().map(|f| self.cache[f]).collect();
                        let node = match kind {
                            crate::GateKind::And => m.and_many(fanins),
                            crate::GateKind::Or => m.or_many(fanins),
                            crate::GateKind::Xor => m.xor_many(fanins),
                            crate::GateKind::Nand => {
                                let x = m.and_many(fanins);
                                m.not(x)
                            }
                            crate::GateKind::Nor => {
                                let x = m.or_many(fanins);
                                m.not(x)
                            }
                            crate::GateKind::Xnor => {
                                let x = m.xor_many(fanins);
                                m.not(x)
                            }
                            crate::GateKind::Not => m.not(fanins[0]),
                            crate::GateKind::Buf => fanins[0],
                        };
                        self.cache.insert(s, node);
                    } else {
                        stack.push((s, true));
                        for &f in self.netlist.fanins(s) {
                            if !self.cache.contains_key(&f) {
                                stack.push((f, false));
                            }
                        }
                    }
                }
            }
        }
        self.cache[&signal]
    }

    /// Budgeted [`ConeExtractor::bdd`]: identical traversal, but every
    /// gate combination runs under `gov`. On exhaustion the partial
    /// per-signal cache is kept, so a retry with a larger budget resumes
    /// where this attempt stopped.
    ///
    /// # Panics
    ///
    /// Panics if the cone reaches a leaf with no assigned variable.
    pub fn try_bdd(
        &mut self,
        m: &mut Manager,
        signal: SignalId,
        gov: &ResourceGovernor,
    ) -> Result<NodeId, ResourceExhausted> {
        if let Some(&f) = self.cache.get(&signal) {
            return Ok(f);
        }
        let mut stack: Vec<(SignalId, bool)> = vec![(signal, false)];
        while let Some((s, expanded)) = stack.pop() {
            if self.cache.contains_key(&s) {
                continue;
            }
            match self.netlist.kind(s) {
                NodeKind::Input | NodeKind::Latch { .. } => {
                    let v = *self.var_map.get(&s).unwrap_or_else(|| {
                        panic!(
                            "cone leaf `{}` has no BDD variable assigned",
                            self.netlist.signal_name(s)
                        )
                    });
                    let node = m.var(v);
                    self.cache.insert(s, node);
                }
                NodeKind::Const(b) => {
                    self.cache.insert(s, if b { NodeId::TRUE } else { NodeId::FALSE });
                }
                NodeKind::Gate(kind) => {
                    if expanded {
                        let fanins: Vec<NodeId> =
                            self.netlist.fanins(s).iter().map(|f| self.cache[f]).collect();
                        let node = match kind {
                            crate::GateKind::And => m.try_and_many(fanins, gov)?,
                            crate::GateKind::Or => m.try_or_many(fanins, gov)?,
                            crate::GateKind::Xor => m.try_xor_many(fanins, gov)?,
                            crate::GateKind::Nand => {
                                let x = m.try_and_many(fanins, gov)?;
                                m.try_not(x, gov)?
                            }
                            crate::GateKind::Nor => {
                                let x = m.try_or_many(fanins, gov)?;
                                m.try_not(x, gov)?
                            }
                            crate::GateKind::Xnor => {
                                let x = m.try_xor_many(fanins, gov)?;
                                m.try_not(x, gov)?
                            }
                            crate::GateKind::Not => m.try_not(fanins[0], gov)?,
                            crate::GateKind::Buf => fanins[0],
                        };
                        self.cache.insert(s, node);
                    } else {
                        stack.push((s, true));
                        for &f in self.netlist.fanins(s) {
                            if !self.cache.contains_key(&f) {
                                stack.push((f, false));
                            }
                        }
                    }
                }
            }
        }
        Ok(self.cache[&signal])
    }

    /// BDDs of all next-state functions, in latch declaration order.
    pub fn next_state_bdds(&mut self, m: &mut Manager) -> Vec<NodeId> {
        let nexts: Vec<SignalId> = self
            .netlist
            .latches()
            .iter()
            .map(|&l| self.netlist.latch_next(l).expect("validated netlist"))
            .collect();
        nexts.into_iter().map(|s| self.bdd(m, s)).collect()
    }

    /// BDDs of all primary-output functions, in output order.
    pub fn output_bdds(&mut self, m: &mut Manager) -> Vec<NodeId> {
        let outs: Vec<SignalId> = self.netlist.outputs().iter().map(|&(_, s)| s).collect();
        outs.into_iter().map(|s| self.bdd(m, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn cone_matches_simulation() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let q = n.add_latch("q", false);
        let x = n.add_gate("x", GateKind::Xor, vec![a, q]);
        let f = n.add_gate("f", GateKind::Nand, vec![x, b]);
        n.set_latch_next(q, f);
        n.add_output("f", f);

        let mut m = Manager::new();
        let mut ext = ConeExtractor::with_default_layout(&n, &mut m);
        let fb = ext.bdd(&mut m, f);
        // Truth table check: vars are [a, b, q].
        for bits in 0u32..8 {
            let assignment: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = !((assignment[0] ^ assignment[2]) && assignment[1]);
            assert_eq!(m.eval(fb, &assignment), expect);
        }
    }

    #[test]
    fn cache_shares_subcones() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let shared = n.add_gate("shared", GateKind::And, vec![a, b]);
        let f = n.add_gate("f", GateKind::Not, vec![shared]);
        let g = n.add_gate("g", GateKind::Buf, vec![shared]);
        n.add_output("f", f);
        n.add_output("g", g);
        let mut m = Manager::new();
        let mut ext = ConeExtractor::with_default_layout(&n, &mut m);
        let fb = ext.bdd(&mut m, f);
        let gb = ext.bdd(&mut m, g);
        let nfb = m.not(fb);
        assert_eq!(nfb, gb);
    }

    #[test]
    fn next_state_and_output_bdds() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_latch("q", false);
        let d = n.add_gate("d", GateKind::Xor, vec![a, q]);
        n.set_latch_next(q, d);
        n.add_output("o", q);
        let mut m = Manager::new();
        let mut ext = ConeExtractor::with_default_layout(&n, &mut m);
        let ns = ext.next_state_bdds(&mut m);
        let os = ext.output_bdds(&mut m);
        assert_eq!(ns.len(), 1);
        assert_eq!(os.len(), 1);
        let va = m.var(VarId(0));
        let vq = m.var(VarId(1));
        let expect = m.xor(va, vq);
        assert_eq!(ns[0], expect);
        assert_eq!(os[0], vq);
    }

    /// Ripple-carry-style function with deliberately scrambled input
    /// declaration order: `a0..a3` declared first, then `b0..b3` —
    /// declaration order gives the worst-case non-interleaved BDD, the
    /// DFS order recovers the interleaved one.
    fn scrambled_adder_carry() -> Netlist {
        let mut n = Netlist::new("carry4");
        let a: Vec<SignalId> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<SignalId> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_const("zero", false);
        for i in 0..4 {
            let ab = n.add_gate(format!("ab{i}"), GateKind::And, vec![a[i], b[i]]);
            let x = n.add_gate(format!("x{i}"), GateKind::Xor, vec![a[i], b[i]]);
            let xc = n.add_gate(format!("xc{i}"), GateKind::And, vec![x, carry]);
            carry = n.add_gate(format!("c{i}"), GateKind::Or, vec![ab, xc]);
        }
        n.add_output("cout", carry);
        n
    }

    #[test]
    fn dfs_order_interleaves_operands() {
        let n = scrambled_adder_carry();
        let order = dfs_leaf_order(&n);
        let names: Vec<&str> = order.iter().map(|&s| n.signal_name(s)).collect();
        // DFS from the carry chain visits a_i and b_i together (the root
        // is the MSB stage, so the high bits come first).
        assert_eq!(names[0], "a3");
        assert_eq!(names[1], "b3");
        let pos = |x: &str| names.iter().position(|&n| n == x).unwrap();
        for i in 0..4 {
            assert_eq!(
                pos(&format!("b{i}")).abs_diff(pos(&format!("a{i}"))),
                1,
                "operand bits {i} must be adjacent"
            );
        }
    }

    #[test]
    fn dfs_layout_shrinks_cone_bdds() {
        let n = scrambled_adder_carry();
        let cout = n.outputs()[0].1;
        let mut m1 = Manager::new();
        let mut default_ext = ConeExtractor::with_default_layout(&n, &mut m1);
        let f_default = default_ext.bdd(&mut m1, cout);
        let mut m2 = Manager::new();
        let mut dfs_ext = ConeExtractor::with_dfs_layout(&n, &mut m2);
        let f_dfs = dfs_ext.bdd(&mut m2, cout);
        assert!(
            m2.size(f_dfs) < m1.size(f_default),
            "DFS order {} must beat declaration order {}",
            m2.size(f_dfs),
            m1.size(f_default)
        );
    }

    #[test]
    fn dfs_order_covers_unreached_leaves() {
        let mut n = Netlist::new("t");
        let _unused = n.add_input("unused");
        let a = n.add_input("a");
        let g = n.add_gate("g", GateKind::Buf, vec![a]);
        n.add_output("o", g);
        let order = dfs_leaf_order(&n);
        assert_eq!(order.len(), 2, "every leaf appears exactly once");
    }

    #[test]
    #[should_panic(expected = "no BDD variable")]
    fn missing_leaf_variable_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let f = n.add_gate("f", GateKind::Buf, vec![a]);
        n.add_output("f", f);
        let mut m = Manager::new();
        let mut ext = ConeExtractor::new(&n, HashMap::new());
        ext.bdd(&mut m, f);
    }
}
