//! Sequential equivalence checking.
//!
//! The paper's premise is that unreachable-state transformations "still be
//! verified against \[the\] original description" \[2\]; this module supplies
//! the verification side so the suite is self-contained:
//!
//! - [`bounded_check`]: symbolic bounded sequential equivalence — both
//!   machines are unrolled over shared per-frame input variables and
//!   every output BDD is compared frame by frame. Exact for the bound,
//!   over *all* input sequences.
//! - [`product_machine_check`]: full sequential equivalence by forward
//!   reachability on the product machine — exact for designs whose joint
//!   state space fits in BDDs.
//! - [`bounded_check_sat`]: the same bounded unrolling phrased as
//!   incremental SAT — each frame's gates are Tseitin-encoded into one
//!   solver and every output miter is queried under an assumption, so
//!   deep unrollings avoid BDD blowup and the check reports the solver's
//!   effort statistics. [`try_bounded_check_sat`] is its governed twin:
//!   the solver search is interruptible through a hook wired to a
//!   [`ResourceGovernor`], which also makes it a fault-injection surface
//!   for the `sat.propagate` / `sat.reduce_db` chaos sites.
//!
//! All return a counterexample trace on failure.

use crate::{GateKind, Netlist, NodeKind, SignalId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use symbi_bdd::image::{ImageEngine, DEFAULT_CLUSTER_LIMIT};
use symbi_bdd::{
    FaultSite, Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId,
};
use symbi_sat::{BudgetedSolveResult, Lit, SatCheckPoint, Solver, SolverStats};

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum SecResult {
    /// No difference found (within the bound, for [`bounded_check`]).
    Equivalent,
    /// The machines diverge: an input trace exposing the difference, one
    /// `Vec<bool>` per frame (ordered like [`Netlist::inputs`]), plus the
    /// index of the differing output in the final frame.
    Counterexample {
        /// Per-frame input assignments reaching the divergence.
        trace: Vec<Vec<bool>>,
        /// Output index that differs after the last frame's inputs.
        output: usize,
    },
}

impl SecResult {
    /// Is this the equivalent outcome?
    pub fn is_equivalent(&self) -> bool {
        matches!(self, SecResult::Equivalent)
    }
}

/// Evaluates one combinational frame of `n` symbolically.
fn frame_values(
    m: &mut Manager,
    n: &Netlist,
    order: &[SignalId],
    inputs: &[NodeId],
    state: &HashMap<SignalId, NodeId>,
) -> HashMap<SignalId, NodeId> {
    let mut value: HashMap<SignalId, NodeId> = state.clone();
    for (&sig, &node) in n.inputs().iter().zip(inputs) {
        value.insert(sig, node);
    }
    for s in n.signals() {
        if let NodeKind::Const(b) = n.kind(s) {
            value.insert(s, if b { NodeId::TRUE } else { NodeId::FALSE });
        }
    }
    for &g in order {
        let fanins: Vec<NodeId> = n.fanins(g).iter().map(|f| value[f]).collect();
        let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
        let node = match kind {
            GateKind::And => m.and_many(fanins),
            GateKind::Or => m.or_many(fanins),
            GateKind::Xor => m.xor_many(fanins),
            GateKind::Nand => {
                let x = m.and_many(fanins);
                m.not(x)
            }
            GateKind::Nor => {
                let x = m.or_many(fanins);
                m.not(x)
            }
            GateKind::Xnor => {
                let x = m.xor_many(fanins);
                m.not(x)
            }
            GateKind::Not => m.not(fanins[0]),
            GateKind::Buf => fanins[0],
        };
        value.insert(g, node);
    }
    value
}

fn initial_state(n: &Netlist) -> HashMap<SignalId, NodeId> {
    n.latches()
        .iter()
        .map(|&l| (l, if n.latch_init(l) { NodeId::TRUE } else { NodeId::FALSE }))
        .collect()
}

fn next_state(
    n: &Netlist,
    value: &HashMap<SignalId, NodeId>,
) -> HashMap<SignalId, NodeId> {
    n.latches()
        .iter()
        .map(|&l| (l, value[&n.latch_next(l).expect("validated netlist")]))
        .collect()
}

/// Bounded sequential equivalence: unrolls both machines for `frames`
/// steps from their initial states over shared symbolic inputs and
/// compares all outputs each frame.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) differ or a netlist is
/// invalid.
pub fn bounded_check(a: &Netlist, b: &Netlist, frames: usize) -> SecResult {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts must match");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts must match");
    a.validate().expect("first netlist invalid");
    b.validate().expect("second netlist invalid");
    let order_a = a.topo_order().expect("validated");
    let order_b = b.topo_order().expect("validated");
    let mut m = Manager::new();
    let mut state_a = initial_state(a);
    let mut state_b = initial_state(b);
    let mut frame_vars: Vec<Vec<NodeId>> = Vec::with_capacity(frames);
    for t in 0..frames {
        let inputs = m.new_vars(a.num_inputs());
        frame_vars.push(inputs.clone());
        let val_a = frame_values(&mut m, a, &order_a, &inputs, &state_a);
        let val_b = frame_values(&mut m, b, &order_b, &inputs, &state_b);
        for (idx, (&(_, sa), &(_, sb))) in a.outputs().iter().zip(b.outputs()).enumerate() {
            let diff = m.xor(val_a[&sa], val_b[&sb]);
            if !diff.is_false() {
                let cube = m.one_sat(diff).expect("non-false BDD is satisfiable");
                let trace = decode_trace(&frame_vars[..=t], &cube);
                return SecResult::Counterexample { trace, output: idx };
            }
        }
        state_a = next_state(a, &val_a);
        state_b = next_state(b, &val_b);
    }
    SecResult::Equivalent
}

/// Constant-true/false literals, created lazily once per solver.
/// Shared with [`crate::sweep`], whose persistent solver encodes the
/// swept window with the same conventions.
pub(crate) struct SatConsts {
    pub(crate) true_lit: Option<Lit>,
}

impl SatConsts {
    pub(crate) fn get(&mut self, solver: &mut Solver, value: bool) -> Lit {
        let t = *self.true_lit.get_or_insert_with(|| {
            let t = Lit::pos(solver.new_var());
            solver.add_clause([t]);
            t
        });
        if value {
            t
        } else {
            !t
        }
    }
}

/// Tseitin-encodes one gate over already-encoded fanin literals.
pub(crate) fn encode_gate(solver: &mut Solver, kind: GateKind, fanins: &[Lit]) -> Lit {
    match kind {
        GateKind::Buf => fanins[0],
        GateKind::Not => !fanins[0],
        GateKind::And | GateKind::Nand => {
            let out = Lit::pos(solver.new_var());
            let mut long = vec![out];
            for &f in fanins {
                solver.add_clause([!out, f]);
                long.push(!f);
            }
            solver.add_clause(long);
            if kind == GateKind::Nand {
                !out
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let out = Lit::pos(solver.new_var());
            let mut long = vec![!out];
            for &f in fanins {
                solver.add_clause([out, !f]);
                long.push(f);
            }
            solver.add_clause(long);
            if kind == GateKind::Nor {
                !out
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = fanins[0];
            for &f in &fanins[1..] {
                let out = Lit::pos(solver.new_var());
                // out ↔ acc ⊕ f
                solver.add_clause([!acc, !f, !out]);
                solver.add_clause([acc, f, !out]);
                solver.add_clause([!acc, f, out]);
                solver.add_clause([acc, !f, out]);
                acc = out;
            }
            if kind == GateKind::Xnor {
                !acc
            } else {
                acc
            }
        }
    }
}

/// Encodes one combinational frame of `n`: returns the literal of every
/// signal given per-frame input literals and current state literals.
pub(crate) fn frame_lits(
    solver: &mut Solver,
    consts: &mut SatConsts,
    n: &Netlist,
    order: &[SignalId],
    inputs: &[Lit],
    state: &HashMap<SignalId, Lit>,
) -> HashMap<SignalId, Lit> {
    let mut value: HashMap<SignalId, Lit> = state.clone();
    for (&sig, &lit) in n.inputs().iter().zip(inputs) {
        value.insert(sig, lit);
    }
    for s in n.signals() {
        if let NodeKind::Const(b) = n.kind(s) {
            let l = consts.get(solver, b);
            value.insert(s, l);
        }
    }
    for &g in order {
        let fanins: Vec<Lit> = n.fanins(g).iter().map(|f| value[f]).collect();
        let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
        let lit = encode_gate(solver, kind, &fanins);
        value.insert(g, lit);
    }
    value
}

/// Bounded sequential equivalence via incremental SAT: the same
/// unrolling as [`bounded_check`], with every frame Tseitin-encoded into
/// a single solver and each output miter queried under an assumption
/// literal. Returns the verdict together with the solver statistics of
/// the whole run.
///
/// Semantics match [`bounded_check`] exactly: the earliest diverging
/// frame (and, within it, the lowest diverging output index) is
/// reported, with an input trace reconstructed from the SAT model.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) differ or a netlist is
/// invalid.
pub fn bounded_check_sat(a: &Netlist, b: &Netlist, frames: usize) -> (SecResult, SolverStats) {
    let gov = ResourceGovernor::unlimited();
    try_bounded_check_sat(a, b, frames, &gov).expect("unlimited governor cannot trip")
}

/// Governed twin of [`bounded_check_sat`]: the solver's CDCL search is
/// interruptible at its `sat.propagate` and `sat.reduce_db` checkpoints
/// through an interrupt hook wired to `gov`, so cancellation, deadlines,
/// and injected faults observed by the governor abort the solve with the
/// precise [`ResourceExhausted`] cause instead of hanging or panicking.
///
/// Per-frame encoding also polls the governor, so a cancel raised while
/// Tseitin-encoding a deep unrolling is seen before the next solve.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) differ or a netlist is
/// invalid.
pub fn try_bounded_check_sat(
    a: &Netlist,
    b: &Netlist,
    frames: usize,
    gov: &ResourceGovernor,
) -> Result<(SecResult, SolverStats), ResourceExhausted> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts must match");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts must match");
    a.validate().expect("first netlist invalid");
    b.validate().expect("second netlist invalid");
    let order_a = a.topo_order().expect("validated");
    let order_b = b.topo_order().expect("validated");
    let mut solver = Solver::new();
    // The hook records *why* it interrupted so the Unknown verdict can be
    // mapped back to a ResourceExhausted cause for the caller. It is
    // installed through the RAII scope of `with_interrupt`, so every
    // exit path — verdicts, trips, panics — clears it and the solver can
    // be reused for plain solves afterwards.
    let cause: Arc<Mutex<Option<ResourceExhausted>>> = Arc::new(Mutex::new(None));
    let hook = {
        let gov = gov.clone();
        let cause = Arc::clone(&cause);
        move |point| {
            let verdict = match point {
                SatCheckPoint::Propagate => gov
                    .fault_site(FaultSite::SatPropagate)
                    .and_then(|()| gov.poll_interrupt()),
                SatCheckPoint::ReduceDb => gov.fault_site(FaultSite::SatReduceDb),
            };
            match verdict {
                Ok(()) => false,
                Err(e) => {
                    *cause.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                    true
                }
            }
        }
    };
    let mut solver = solver.with_interrupt(hook);
    let interrupted = |cause: &Mutex<Option<ResourceExhausted>>| {
        cause
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            // An Unknown without a recorded cause can only come from the
            // conflict budget, which is effectively unlimited here.
            .unwrap_or(ResourceExhausted::Cancelled)
    };
    let mut consts = SatConsts { true_lit: None };
    let mut state_a: HashMap<SignalId, Lit> = a
        .latches()
        .iter()
        .map(|&l| (l, consts.get(&mut solver, a.latch_init(l))))
        .collect();
    let mut state_b: HashMap<SignalId, Lit> = b
        .latches()
        .iter()
        .map(|&l| (l, consts.get(&mut solver, b.latch_init(l))))
        .collect();
    let mut frame_inputs: Vec<Vec<Lit>> = Vec::with_capacity(frames);
    for t in 0..frames {
        // One governed Tseitin pass per frame: its own injection site,
        // plus an interrupt check so a cancel raised mid-unrolling is
        // seen before the next solve.
        gov.fault_site(FaultSite::SatEncode)?;
        gov.poll_interrupt()?;
        let inputs: Vec<Lit> =
            (0..a.num_inputs()).map(|_| Lit::pos(solver.new_var())).collect();
        frame_inputs.push(inputs.clone());
        let val_a = frame_lits(&mut solver, &mut consts, a, &order_a, &inputs, &state_a);
        let val_b = frame_lits(&mut solver, &mut consts, b, &order_b, &inputs, &state_b);
        for (idx, (&(_, sa), &(_, sb))) in a.outputs().iter().zip(b.outputs()).enumerate()
        {
            let diff = encode_gate(&mut solver, GateKind::Xor, &[val_a[&sa], val_b[&sb]]);
            match solver.solve_budgeted_with_assumptions(&[diff], u64::MAX) {
                BudgetedSolveResult::Sat => {
                    let trace = frame_inputs[..=t]
                        .iter()
                        .map(|frame| {
                            frame
                                .iter()
                                .map(|l| {
                                    // Unconstrained inputs default to false,
                                    // matching the BDD trace decoder.
                                    solver
                                        .value(l.var())
                                        .map(|b| b ^ l.is_neg())
                                        .unwrap_or(false)
                                })
                                .collect()
                        })
                        .collect();
                    return Ok((
                        SecResult::Counterexample { trace, output: idx },
                        solver.stats,
                    ));
                }
                BudgetedSolveResult::Unsat { .. } => {}
                BudgetedSolveResult::Unknown => return Err(interrupted(&cause)),
            }
        }
        state_a = a
            .latches()
            .iter()
            .map(|&l| (l, val_a[&a.latch_next(l).expect("validated netlist")]))
            .collect();
        state_b = b
            .latches()
            .iter()
            .map(|&l| (l, val_b[&b.latch_next(l).expect("validated netlist")]))
            .collect();
    }
    Ok((SecResult::Equivalent, solver.stats))
}

fn decode_trace(frame_vars: &[Vec<NodeId>], cube: &[(VarId, bool)]) -> Vec<Vec<bool>> {
    // Variables were created frame-major, so ids decode positionally;
    // unconstrained inputs default to false.
    frame_vars
        .iter()
        .enumerate()
        .map(|(t, inputs)| {
            (0..inputs.len())
                .map(|i| {
                    let var = VarId((t * inputs.len() + i) as u32);
                    cube.iter().any(|&(v, phase)| v == var && phase)
                })
                .collect()
        })
        .collect()
}

/// Full sequential equivalence by reachability on the product machine:
/// explores the joint state space from the initial pair and checks that no
/// reachable joint state distinguishes any output.
///
/// Exact, but exponential in the joint latch count — intended for designs
/// up to a few dozen latches. `max_iterations` caps the fixed point; on
/// hitting it the check conservatively reports a (possibly spurious)
/// failure via `None`.
///
/// # Panics
///
/// Panics if the interfaces differ or a netlist is invalid.
pub fn product_machine_check(
    a: &Netlist,
    b: &Netlist,
    max_iterations: usize,
) -> Option<bool> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts must match");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts must match");
    a.validate().expect("first netlist invalid");
    b.validate().expect("second netlist invalid");
    let order_a = a.topo_order().expect("validated");
    let order_b = b.topo_order().expect("validated");

    let mut m = Manager::new();
    // Variable layout: joint present-state latches (a then b), then
    // primary inputs.
    let mut ps_a: HashMap<SignalId, NodeId> = HashMap::new();
    let mut ps_vars: Vec<VarId> = Vec::new();
    for &l in a.latches() {
        ps_vars.push(VarId(m.num_vars() as u32));
        ps_a.insert(l, m.new_var());
    }
    let mut ps_b: HashMap<SignalId, NodeId> = HashMap::new();
    for &l in b.latches() {
        ps_vars.push(VarId(m.num_vars() as u32));
        ps_b.insert(l, m.new_var());
    }
    let input_start = m.num_vars() as u32;
    let input_vars: Vec<NodeId> = m.new_vars(a.num_inputs());
    let input_ids: Vec<VarId> =
        (input_start..input_start + a.num_inputs() as u32).map(VarId).collect();

    let val_a = frame_values(&mut m, a, &order_a, &input_vars, &ps_a);
    let val_b = frame_values(&mut m, b, &order_b, &input_vars, &ps_b);

    // Output miter over present state and inputs.
    let mut bad = NodeId::FALSE;
    for (&(_, sa), &(_, sb)) in a.outputs().iter().zip(b.outputs()) {
        let diff = m.xor(val_a[&sa], val_b[&sb]);
        bad = m.or(bad, diff);
    }
    let bad_states = m.exists(bad, &input_ids);

    // Joint image via substitution: next-state functions replace the
    // present-state variables simultaneously.
    let mut subst: Vec<(VarId, NodeId)> = Vec::new();
    for (i, &l) in a.latches().iter().enumerate() {
        subst.push((ps_vars[i], val_a[&a.latch_next(l).expect("wired")]));
    }
    let offset = a.num_latches();
    for (i, &l) in b.latches().iter().enumerate() {
        subst.push((ps_vars[offset + i], val_b[&b.latch_next(l).expect("wired")]));
    }

    // Initial joint state.
    let mut init_assign: Vec<(VarId, bool)> = Vec::new();
    for (i, &l) in a.latches().iter().enumerate() {
        init_assign.push((ps_vars[i], a.latch_init(l)));
    }
    for (i, &l) in b.latches().iter().enumerate() {
        init_assign.push((ps_vars[offset + i], b.latch_init(l)));
    }
    let init = m.minterm(&init_assign);

    // Forward reachability over a *partitioned* transition relation:
    // one conjunct `s'ᵢ ⊙ δᵢ(s, x)` per joint latch bit, clustered and
    // scheduled by the shared image engine instead of conjoined into a
    // single monolithic relation BDD (whose size is often close to the
    // product of its factors'). The unlimited governor keeps the check
    // exact — this entry point is bounded by `max_iterations` alone.
    let ns_start = m.num_vars() as u32;
    m.new_vars(ps_vars.len());
    let ns_vars: Vec<VarId> =
        (ns_start..ns_start + ps_vars.len() as u32).map(VarId).collect();
    let mut conjuncts: Vec<NodeId> = Vec::with_capacity(subst.len());
    for (i, &(_, delta)) in subst.iter().enumerate() {
        let nv = m.var(ns_vars[i]);
        conjuncts.push(m.xnor(nv, delta));
    }
    let mut quantify: Vec<VarId> = ps_vars.clone();
    quantify.extend(input_ids.iter().copied());
    let gov = ResourceGovernor::unlimited();
    let mut engine =
        ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, DEFAULT_CLUSTER_LIMIT, &gov)
            .expect("unlimited governor cannot exhaust");
    let rename_pairs: Vec<(VarId, VarId)> =
        ns_vars.iter().copied().zip(ps_vars.iter().copied()).collect();

    let mut reach = init;
    let mut frontier = init;
    for _ in 0..max_iterations {
        let hit = m.and(frontier, bad_states);
        if !hit.is_false() {
            return Some(false);
        }
        let img = engine
            .try_image(&mut m, frontier, &gov)
            .expect("unlimited governor cannot exhaust");
        let img = m.rename(img, &rename_pairs);
        let fresh = m.diff(img, reach);
        if fresh.is_false() {
            return Some(true);
        }
        // Safe against the pre-update reached set (`fresh` is disjoint
        // from it); any re-visited states were already checked against
        // `bad_states` the iteration they first entered a frontier.
        frontier = engine
            .try_simplified_frontier(&mut m, fresh, reach, &gov)
            .expect("unlimited governor cannot exhaust");
        reach = m.or(reach, img);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle(complemented: bool) -> Netlist {
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let q = n.add_latch("q", false);
        let d = n.add_gate("d", GateKind::Xor, vec![en, q]);
        n.set_latch_next(q, d);
        if complemented {
            let nq = n.add_gate("nq", GateKind::Not, vec![q]);
            let nnq = n.add_gate("nnq", GateKind::Not, vec![nq]);
            n.add_output("o", nnq);
        } else {
            n.add_output("o", q);
        }
        n
    }

    #[test]
    fn equivalent_machines_pass_both_checks() {
        let a = toggle(false);
        let b = toggle(true);
        assert!(bounded_check(&a, &b, 6).is_equivalent());
        assert_eq!(product_machine_check(&a, &b, 100), Some(true));
    }

    #[test]
    fn differing_output_caught_with_trace() {
        let a = toggle(false);
        let mut b = toggle(false);
        let q = b.signal("q").unwrap();
        let nq = b.add_gate("bad", GateKind::Not, vec![q]);
        b.set_output_signal(0, nq);
        match bounded_check(&a, &b, 4) {
            SecResult::Counterexample { trace, output } => {
                assert_eq!(output, 0);
                assert_eq!(trace.len(), 1, "differs in the very first frame");
            }
            SecResult::Equivalent => panic!("difference missed"),
        }
        assert_eq!(product_machine_check(&a, &b, 100), Some(false));
    }

    #[test]
    fn deep_difference_needs_enough_frames() {
        // b diverges only once its 3-stage shift register fills with ones.
        let a = {
            let mut n = Netlist::new("a");
            let i = n.add_input("i");
            let _ = i;
            let c = n.add_const("zero", false);
            n.add_output("o", c);
            n
        };
        let b = {
            let mut n = Netlist::new("b");
            let i = n.add_input("i");
            let q0 = n.add_latch("q0", false);
            let q1 = n.add_latch("q1", false);
            let q2 = n.add_latch("q2", false);
            n.set_latch_next(q0, i);
            n.set_latch_next(q1, q0);
            n.set_latch_next(q2, q1);
            let t = n.add_gate("t", GateKind::And, vec![q0, q1]);
            let o = n.add_gate("o", GateKind::And, vec![t, q2]);
            n.add_output("o", o);
            n
        };
        assert!(bounded_check(&a, &b, 3).is_equivalent(), "hidden for 3 frames");
        match bounded_check(&a, &b, 4) {
            SecResult::Counterexample { trace, .. } => {
                assert_eq!(trace.len(), 4);
                // The trace must feed three ones to fill the register.
                let ones: usize =
                    trace.iter().take(3).filter(|frame| frame[0]).count();
                assert_eq!(ones, 3);
            }
            SecResult::Equivalent => panic!("difference missed at frame 4"),
        }
        assert_eq!(product_machine_check(&a, &b, 100), Some(false));
    }

    #[test]
    fn iteration_cap_reports_unknown() {
        let a = toggle(false);
        let b = toggle(true);
        assert_eq!(product_machine_check(&a, &b, 0), None);
    }

    #[test]
    fn sat_check_agrees_with_bdd_on_equivalent_machines() {
        let a = toggle(false);
        let b = toggle(true);
        let (res, stats) = bounded_check_sat(&a, &b, 6);
        assert!(res.is_equivalent());
        // 6 frames × 1 output = 12 refuted miters worth of work.
        assert!(stats.propagations > 0, "stats are empty: {stats:?}");
    }

    #[test]
    fn sat_check_finds_the_same_divergence_frame_and_output() {
        let a = toggle(false);
        let mut b = toggle(false);
        let q = b.signal("q").unwrap();
        let nq = b.add_gate("bad", GateKind::Not, vec![q]);
        b.set_output_signal(0, nq);
        let (res, _) = bounded_check_sat(&a, &b, 4);
        match res {
            SecResult::Counterexample { trace, output } => {
                assert_eq!(output, 0);
                assert_eq!(trace.len(), 1, "differs in the very first frame");
            }
            SecResult::Equivalent => panic!("difference missed"),
        }
    }

    #[test]
    fn sat_counterexample_trace_is_replayable() {
        // The deep-difference pair: the SAT trace must genuinely drive
        // the machines apart when simulated.
        let a = {
            let mut n = Netlist::new("a");
            let _ = n.add_input("i");
            let c = n.add_const("zero", false);
            n.add_output("o", c);
            n
        };
        let b = {
            let mut n = Netlist::new("b");
            let i = n.add_input("i");
            let q0 = n.add_latch("q0", false);
            let q1 = n.add_latch("q1", false);
            let q2 = n.add_latch("q2", false);
            n.set_latch_next(q0, i);
            n.set_latch_next(q1, q0);
            n.set_latch_next(q2, q1);
            let t = n.add_gate("t", GateKind::And, vec![q0, q1]);
            let o = n.add_gate("o", GateKind::And, vec![t, q2]);
            n.add_output("o", o);
            n
        };
        let (res3, _) = bounded_check_sat(&a, &b, 3);
        assert!(res3.is_equivalent(), "hidden for 3 frames");
        let (res4, _) = bounded_check_sat(&a, &b, 4);
        match res4 {
            SecResult::Counterexample { trace, output } => {
                assert_eq!(output, 0);
                assert_eq!(trace.len(), 4);
                // Replay on the simulator: outputs must differ at the end.
                let mut sim_a = crate::sim::Simulator::new(&a);
                let mut sim_b = crate::sim::Simulator::new(&b);
                let (mut last_a, mut last_b) = (0u64, 0u64);
                for frame in &trace {
                    let words: Vec<u64> =
                        frame.iter().map(|&x| if x { 1 } else { 0 }).collect();
                    last_a = sim_a.step(&words)[0] & 1;
                    last_b = sim_b.step(&words)[0] & 1;
                }
                assert_ne!(
                    last_a, last_b,
                    "trace {trace:?} does not distinguish the machines"
                );
            }
            SecResult::Equivalent => panic!("difference missed at frame 4"),
        }
    }

    #[test]
    fn governed_sat_check_matches_ungoverned_result() {
        let a = toggle(false);
        let b = toggle(true);
        let gov = ResourceGovernor::unlimited();
        let (res, stats) =
            try_bounded_check_sat(&a, &b, 6, &gov).expect("no faults, no limits");
        assert!(res.is_equivalent());
        assert!(stats.propagations > 0);
    }

    #[test]
    fn injected_budget_fault_at_sat_propagate_aborts_with_cause() {
        use symbi_bdd::{FaultKind, FaultPlan};
        let a = toggle(false);
        let b = toggle(true);
        let plan = Arc::new(
            FaultPlan::new(7).with_rule(FaultSite::SatPropagate, 1, FaultKind::Budget),
        );
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let err = try_bounded_check_sat(&a, &b, 6, &gov)
            .expect_err("first search-loop crossing must fire");
        assert_eq!(err, ResourceExhausted::Steps);
        assert!(plan.faults_fired() >= 1);
    }

    #[test]
    fn cancelled_governor_stops_governed_sat_check() {
        let a = toggle(false);
        let b = toggle(true);
        let gov = ResourceGovernor::unlimited();
        gov.cancel_handle().cancel();
        // The per-frame poll trips before any solving happens.
        let err = try_bounded_check_sat(&a, &b, 6, &gov).expect_err("cancelled");
        assert_eq!(err, ResourceExhausted::Cancelled);
    }

    #[test]
    fn sat_check_handles_all_gate_kinds() {
        // A combinational netlist using every gate kind, against an
        // identically-built copy and against a subtly broken copy.
        let build = |broken: bool| {
            let mut n = Netlist::new("g");
            let x = n.add_input("x");
            let y = n.add_input("y");
            let z = n.add_input("z");
            let and = n.add_gate("and", GateKind::And, vec![x, y]);
            let or = n.add_gate("or", GateKind::Or, vec![y, z]);
            let xor = n.add_gate("xor", GateKind::Xor, vec![and, or]);
            let nand = n.add_gate("nand", GateKind::Nand, vec![x, z]);
            let nor = n.add_gate("nor", GateKind::Nor, vec![and, z]);
            let xnor = n.add_gate("xnor", GateKind::Xnor, vec![nand, nor]);
            let not = n.add_gate("not", GateKind::Not, vec![xor]);
            let buf = n.add_gate("buf", GateKind::Buf, vec![xnor]);
            let top = if broken {
                n.add_gate("top", GateKind::Or, vec![not, buf])
            } else {
                n.add_gate("top", GateKind::And, vec![not, buf])
            };
            n.add_output("o", top);
            n
        };
        let reference = build(false);
        let same = build(false);
        let (res, _) = bounded_check_sat(&reference, &same, 2);
        assert!(res.is_equivalent());
        assert_eq!(
            bounded_check(&reference, &same, 2),
            SecResult::Equivalent,
            "BDD check agrees"
        );
        let broken = build(true);
        let (res_broken, _) = bounded_check_sat(&reference, &broken, 2);
        assert!(!res_broken.is_equivalent());
        assert!(!bounded_check(&reference, &broken, 2).is_equivalent());
    }
}
