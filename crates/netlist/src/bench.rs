//! ISCAS-89 `.bench` format reader and writer.
//!
//! The format, as distributed with the ISCAS/MCNC benchmark suites:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(f)
//! q = DFF(d)
//! f = AND(a, q)
//! d = NOT(f)
//! ```
//!
//! Gates may take any number of fanins; `DFF` declares a latch whose
//! initial value is 0 (the ISCAS convention). Signals may be referenced
//! before they are defined.

use crate::{GateKind, Netlist, NodeKind, ParseNetlistError, SignalId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] describing the first malformed line,
/// unknown gate keyword, duplicate definition, or dangling reference.
pub fn parse(text: &str) -> Result<Netlist, ParseNetlistError> {
    enum Pending {
        Input,
        Dff(String),
        Gate(GateKind, Vec<String>),
    }
    let mut model_name = String::from("bench");
    // (name, definition, 1-based source line)
    let mut defs: Vec<(String, Pending, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut defined: HashMap<String, usize> = HashMap::new();
    let mut init_one: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            if let Some(rest) = raw.trim().strip_prefix("# name:") {
                model_name = rest.trim().to_string();
            } else if let Some(rest) = raw.trim().strip_prefix("# init:") {
                // Extension: "# init: <latch> = 1" records a non-zero
                // power-up value (the plain format assumes all-zero).
                if let Some((latch, value)) = rest.split_once('=') {
                    if value.trim() == "1" {
                        init_one.push(latch.trim().to_string());
                    }
                }
            }
            continue;
        }
        let err = |message: String| ParseNetlistError::Syntax { line: lineno + 1, message };
        if let Some(rest) = strip_call(line, "INPUT") {
            let name = rest.trim().to_string();
            if name.is_empty() {
                return Err(err("empty INPUT name".into()));
            }
            if defined.insert(name.clone(), defs.len()).is_some() {
                return Err(ParseNetlistError::DuplicateName { name, line: lineno + 1 });
            }
            defs.push((name, Pending::Input, lineno + 1));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            let name = rest.trim().to_string();
            if name.is_empty() {
                return Err(err("empty OUTPUT name".into()));
            }
            outputs.push((name, lineno + 1));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let name = lhs.trim().to_string();
            let rhs = rhs.trim();
            let (func, args) = rhs
                .split_once('(')
                .ok_or_else(|| err(format!("expected `gate(args)`, found `{rhs}`")))?;
            let args = args
                .strip_suffix(')')
                .ok_or_else(|| err("missing closing parenthesis".into()))?;
            let fanins: Vec<String> =
                args.split(',').map(|a| a.trim().to_string()).filter(|a| !a.is_empty()).collect();
            let func = func.trim();
            let pending = if func.eq_ignore_ascii_case("DFF") {
                if fanins.len() != 1 {
                    return Err(err(format!("DFF takes exactly one fanin, got {}", fanins.len())));
                }
                Pending::Dff(fanins[0].clone())
            } else {
                let kind = GateKind::from_bench_name(func)
                    .ok_or_else(|| err(format!("unknown gate `{func}`")))?;
                if fanins.is_empty() || (kind.is_unary() && fanins.len() != 1) {
                    return Err(ParseNetlistError::BadArity {
                        gate: name,
                        kind,
                        arity: fanins.len(),
                    });
                }
                Pending::Gate(kind, fanins)
            };
            if defined.insert(name.clone(), defs.len()).is_some() {
                return Err(ParseNetlistError::DuplicateName { name, line: lineno + 1 });
            }
            defs.push((name, pending, lineno + 1));
        } else {
            return Err(err(format!("unrecognized line `{line}`")));
        }
    }

    // Signals may be referenced before they are defined, so resolution
    // happens entirely up front: inputs and latches are created first,
    // then gates, and since [`Netlist`] assigns ids sequentially, every
    // id is known before any node exists. This keeps construction free
    // of placeholder fanins and lets every dangling reference carry the
    // line it occurred on.
    let mut ids: HashMap<&str, SignalId> = HashMap::new();
    let mut next_id = 0u32;
    for (name, pending, _) in &defs {
        if !matches!(pending, Pending::Gate(..)) {
            ids.insert(name.as_str(), SignalId(next_id));
            next_id += 1;
        }
    }
    for (name, pending, _) in &defs {
        if matches!(pending, Pending::Gate(..)) {
            ids.insert(name.as_str(), SignalId(next_id));
            next_id += 1;
        }
    }
    let lookup = |name: &str, line: usize| {
        ids.get(name).copied().ok_or_else(|| ParseNetlistError::UnknownSignal {
            name: name.to_string(),
            line,
        })
    };
    // Everything resolvable: build the netlist with fully wired fanins.
    let mut n = Netlist::new(model_name);
    for (name, pending, _) in &defs {
        match pending {
            Pending::Input => {
                n.add_input(name.clone());
            }
            Pending::Dff(_) => {
                n.add_latch(name.clone(), init_one.iter().any(|x| x == name));
            }
            Pending::Gate(..) => {}
        }
    }
    for (name, pending, line) in &defs {
        if let Pending::Gate(kind, fanins) = pending {
            let resolved: Result<Vec<SignalId>, _> =
                fanins.iter().map(|f| lookup(f, *line)).collect();
            n.add_gate(name.clone(), *kind, resolved?);
        }
    }
    for (name, pending, line) in &defs {
        if let Pending::Dff(next) = pending {
            let latch = ids[name.as_str()];
            n.set_latch_next(latch, lookup(next, *line)?);
        }
    }
    for (out, line) in &outputs {
        let id = lookup(out, *line)?;
        n.add_output(out.clone(), id);
    }
    n.validate()?;
    Ok(n)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

/// Serializes a [`Netlist`] to `.bench` text.
///
/// Constants are lowered to `AND(x, NOT(x))` / `OR(x, NOT(x))` stubs over
/// the first input, since the format has no constant primitive.
pub fn write(n: &Netlist) -> String {
    // Emitted names: a signal whose name is claimed by an output alias is
    // renamed, so the alias buffer below never collides or rebinds.
    let names = n.writer_names();
    let name_of = |s: SignalId| names[s.index()].as_str();
    let mut out = String::new();
    let _ = writeln!(out, "# name: {}", n.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} latches, {} gates",
        n.num_inputs(),
        n.num_outputs(),
        n.num_latches(),
        n.num_gates()
    );
    for &i in n.inputs() {
        let _ = writeln!(out, "INPUT({})", name_of(i));
    }
    for (name, _) in n.outputs() {
        let _ = writeln!(out, "OUTPUT({name})");
    }
    // Alias outputs whose name differs from their driving signal.
    for (name, sig) in n.outputs() {
        if name != name_of(*sig) {
            let _ = writeln!(out, "{name} = BUFF({})", name_of(*sig));
        }
    }
    for &l in n.latches() {
        if n.latch_init(l) {
            let _ = writeln!(out, "# init: {} = 1", name_of(l));
        }
        let next = n.latch_next(l).expect("validated netlist");
        let _ = writeln!(out, "{} = DFF({})", name_of(l), name_of(next));
    }
    for s in n.signals() {
        match n.kind(s) {
            NodeKind::Gate(kind) => {
                let fanins: Vec<&str> = n.fanins(s).iter().map(|&f| name_of(f)).collect();
                let _ = writeln!(out, "{} = {}({})", name_of(s), kind, fanins.join(", "));
            }
            NodeKind::Const(value) => {
                // No constant primitive in .bench: use a tautology/contradiction.
                let seed = n
                    .inputs()
                    .first()
                    .or_else(|| n.latches().first())
                    .map(|&x| name_of(x).to_string())
                    .unwrap_or_else(|| "__seed".to_string());
                let name = name_of(s);
                let _ = writeln!(out, "{name}_inv = NOT({seed})");
                if value {
                    let _ = writeln!(out, "{name} = OR({seed}, {name}_inv)");
                } else {
                    let _ = writeln!(out, "{name} = AND({seed}, {name}_inv)");
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = "\
# a toggling latch gated by an input
INPUT(en)
OUTPUT(f)
q = DFF(d)
f = AND(en, q)
d = NOT(q)
";

    #[test]
    fn parse_simple() {
        let n = parse(TOGGLE).expect("parses");
        assert_eq!(n.num_inputs(), 1);
        assert_eq!(n.num_latches(), 1);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_gates(), 2);
        let q = n.signal("q").unwrap();
        assert!(!n.latch_init(q));
        assert_eq!(n.signal_name(n.latch_next(q).unwrap()), "d");
    }

    #[test]
    fn parse_forward_references() {
        // d references f which is defined later.
        let text = "INPUT(a)\nOUTPUT(d)\nd = NOT(f)\nf = AND(a, a)\n";
        let n = parse(text).expect("forward references are legal");
        assert_eq!(n.num_gates(), 2);
    }

    #[test]
    fn round_trip() {
        let n = parse(TOGGLE).unwrap();
        let text = write(&n);
        let n2 = parse(&text).expect("round trip parses");
        assert_eq!(n.num_inputs(), n2.num_inputs());
        assert_eq!(n.num_latches(), n2.num_latches());
        assert_eq!(n.num_gates(), n2.num_gates());
        assert_eq!(n.outputs().len(), n2.outputs().len());
    }

    #[test]
    fn unknown_gate_rejected() {
        let text = "INPUT(a)\nf = FROB(a)\nOUTPUT(f)\n";
        assert!(matches!(parse(text), Err(ParseNetlistError::Syntax { .. })));
    }

    #[test]
    fn unknown_signal_rejected() {
        let text = "INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n";
        assert_eq!(
            parse(text).err(),
            Some(ParseNetlistError::UnknownSignal { name: "ghost".into(), line: 3 })
        );
    }

    #[test]
    fn duplicate_definition_rejected() {
        let text = "INPUT(a)\nINPUT(a)\n";
        assert_eq!(
            parse(text).err(),
            Some(ParseNetlistError::DuplicateName { name: "a".into(), line: 2 })
        );
    }

    #[test]
    fn dff_arity_checked() {
        let text = "INPUT(a)\nq = DFF(a, a)\n";
        assert!(matches!(parse(text), Err(ParseNetlistError::Syntax { .. })));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(f)\nf = BUFF(a)\n";
        let n = parse(text).expect("parses");
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn output_name_colliding_with_other_signal_round_trips() {
        // An output named like an unrelated gate: the writer must rename
        // the gate so the `OUTPUT(g)` + `g = BUFF(...)` alias pair binds
        // to the true driver instead of the unrelated gate.
        let mut n = Netlist::new("collide");
        let a = n.add_input("a");
        let q = n.add_latch("q", false);
        let g = n.add_gate("g", GateKind::Not, vec![a]);
        n.set_latch_next(q, g);
        n.add_output("g", q); // named like the gate, driven by the latch
        n.add_output("o", g);
        n.validate().unwrap();
        let text = write(&n);
        let back = parse(&text).expect("collision-free text");
        assert!(crate::sim::random_co_simulation(&n, &back, 32, 7), "behaviour changed:\n{text}");
    }

    #[test]
    fn multi_input_gates() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nf = NAND(a, b, c)\n";
        let n = parse(text).unwrap();
        let f = n.signal("f").unwrap();
        assert_eq!(n.fanins(f).len(), 3);
        assert_eq!(n.kind(f), NodeKind::Gate(GateKind::Nand));
    }
}
