//! Netlist size metrics, including the and/inv expansion count that
//! the paper's Table 3.2 reports in its `AND` column.

use crate::{Netlist, NodeKind};
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Latches.
    pub latches: usize,
    /// Logic gates of any arity.
    pub gates: usize,
    /// Two-input AND nodes in the and/inverter-graph expansion.
    pub aig_ands: usize,
    /// Sum of gate fanin counts (a literal-count proxy).
    pub literals: usize,
    /// Longest combinational path, in gate levels.
    pub depth: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} i/o, {} latches, {} gates ({} AND2, {} literals, depth {})",
            self.inputs, self.outputs, self.latches, self.gates, self.aig_ands,
            self.literals, self.depth
        )
    }
}

/// Computes [`NetlistStats`] for a validated netlist.
///
/// # Panics
///
/// Panics if the netlist has combinational cycles.
pub fn stats(n: &Netlist) -> NetlistStats {
    let order = n.topo_order().expect("stats requires an acyclic netlist");
    let mut level = vec![0usize; n.num_signals()];
    let mut aig_ands = 0;
    let mut literals = 0;
    let mut depth = 0;
    for &g in &order {
        let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
        let fanins = n.fanins(g);
        literals += fanins.len();
        aig_ands += kind.aig_and_count(fanins.len());
        let lvl = 1 + fanins.iter().map(|f| level[f.index()]).max().unwrap_or(0);
        level[g.index()] = lvl;
        depth = depth.max(lvl);
    }
    NetlistStats {
        inputs: n.num_inputs(),
        outputs: n.num_outputs(),
        latches: n.num_latches(),
        gates: order.len(),
        aig_ands,
        literals,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn counts_and_depth() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate("g1", GateKind::And, vec![a, b, c]); // 2 AND2
        let g2 = n.add_gate("g2", GateKind::Xor, vec![g1, c]); // 3 AND2
        n.add_output("o", g2);
        let s = stats(&n);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.gates, 2);
        assert_eq!(s.aig_ands, 2 + 3);
        assert_eq!(s.literals, 3 + 2);
        assert_eq!(s.depth, 2);
        assert!(s.to_string().contains("depth 2"));
    }

    #[test]
    fn empty_netlist() {
        let n = Netlist::new("empty");
        let s = stats(&n);
        assert_eq!(s, NetlistStats::default());
    }
}
