//! Lowering to an and/inverter netlist: every gate becomes a balanced
//! tree of 2-input ANDs and inverters (the "and/inv expansion" whose node
//! count Table 3.2 reports, and the input form of the technology mapper).

use crate::{GateKind, Netlist, NodeKind, SignalId};
use std::collections::HashMap;

/// Structural-hashing builder for and/inv netlists.
#[derive(Debug)]
pub struct AigBuilder {
    /// The netlist being built (gates restricted to And2/Not).
    pub out: Netlist,
    and_hash: HashMap<(SignalId, SignalId), SignalId>,
    not_hash: HashMap<SignalId, SignalId>,
}

impl AigBuilder {
    /// Creates a builder for a fresh netlist with the given name.
    pub fn new(name: &str) -> Self {
        AigBuilder { out: Netlist::new(name), and_hash: HashMap::new(), not_hash: HashMap::new() }
    }

    /// Hash-consed inverter.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        if let Some(&x) = self.not_hash.get(&a) {
            return x;
        }
        let name = self.out.fresh_name("inv");
        let x = self.out.add_gate(name, GateKind::Not, vec![a]);
        self.not_hash.insert(a, x);
        self.not_hash.insert(x, a);
        x
    }

    /// Hash-consed 2-input AND.
    pub fn and2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        if a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&x) = self.and_hash.get(&key) {
            return x;
        }
        let name = self.out.fresh_name("and");
        let x = self.out.add_gate(name, GateKind::And, vec![key.0, key.1]);
        self.and_hash.insert(key, x);
        x
    }

    /// Balanced AND of many operands.
    pub fn and_many(&mut self, mut ops: Vec<SignalId>) -> SignalId {
        assert!(!ops.is_empty(), "and_many needs at least one operand");
        while ops.len() > 1 {
            let mut next = Vec::with_capacity(ops.len().div_ceil(2));
            for pair in ops.chunks(2) {
                next.push(if pair.len() == 2 { self.and2(pair[0], pair[1]) } else { pair[0] });
            }
            ops = next;
        }
        ops[0]
    }

    /// OR through De Morgan.
    pub fn or2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let na = self.not(a);
        let nb = self.not(b);
        let x = self.and2(na, nb);
        self.not(x)
    }

    /// XOR as three ANDs.
    pub fn xor2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let na = self.not(a);
        let nb = self.not(b);
        let t1 = self.and2(a, nb);
        let t2 = self.and2(na, b);
        self.or2(t1, t2)
    }
}

/// Lowers `n` into an equivalent netlist whose only gates are 2-input
/// `And` and `Not` (plus untouched latches, constants, and interface).
///
/// # Panics
///
/// Panics if `n` fails validation.
pub fn to_aig(n: &Netlist) -> Netlist {
    n.validate().expect("aig conversion requires a valid netlist");
    let mut b = AigBuilder::new(n.name());
    let mut map: HashMap<SignalId, SignalId> = HashMap::new();
    for &i in n.inputs() {
        map.insert(i, b.out.add_input(n.signal_name(i).to_string()));
    }
    for &l in n.latches() {
        map.insert(l, b.out.add_latch(n.signal_name(l).to_string(), n.latch_init(l)));
    }
    for s in n.signals() {
        if let NodeKind::Const(v) = n.kind(s) {
            map.insert(s, b.out.add_const(n.signal_name(s).to_string(), v));
        }
    }
    for g in n.topo_order().expect("validated") {
        let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
        let fanins: Vec<SignalId> = n.fanins(g).iter().map(|f| map[f]).collect();
        let lowered = match kind {
            GateKind::And => b.and_many(fanins),
            GateKind::Nand => {
                let x = b.and_many(fanins);
                b.not(x)
            }
            GateKind::Or => {
                let inverted: Vec<SignalId> = fanins.iter().map(|&f| b.not(f)).collect();
                let x = b.and_many(inverted);
                b.not(x)
            }
            GateKind::Nor => {
                let inverted: Vec<SignalId> = fanins.iter().map(|&f| b.not(f)).collect();
                b.and_many(inverted)
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = fanins[0];
                for &f in &fanins[1..] {
                    acc = b.xor2(acc, f);
                }
                if kind == GateKind::Xnor {
                    b.not(acc)
                } else {
                    acc
                }
            }
            GateKind::Not => b.not(fanins[0]),
            GateKind::Buf => fanins[0],
        };
        map.insert(g, lowered);
    }
    for &l in n.latches() {
        let next = map[&n.latch_next(l).expect("validated")];
        b.out.set_latch_next(map[&l], next);
    }
    for (name, sig) in n.outputs() {
        b.out.add_output(name.clone(), map[sig]);
    }
    b.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::random_co_simulation;

    #[test]
    fn aig_preserves_behaviour() {
        let text = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nOUTPUT(g)\n\
q = DFF(d)\nx = XOR(a, b, q)\nf = NAND(x, c)\ng = NOR(a, c)\nd = OR(f, g)\n";
        let n = crate::bench::parse(text).unwrap();
        let aig = to_aig(&n);
        assert!(random_co_simulation(&n, &aig, 32, 1234));
        // Only And/Not gates remain.
        for s in aig.signals() {
            if let NodeKind::Gate(kind) = aig.kind(s) {
                assert!(matches!(kind, GateKind::And | GateKind::Not), "{kind}");
                if kind == GateKind::And {
                    assert_eq!(aig.fanins(s).len(), 2);
                }
            }
        }
    }

    #[test]
    fn hashing_shares_structure() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate("g1", GateKind::And, vec![a, b]);
        let g2 = n.add_gate("g2", GateKind::And, vec![b, a]);
        let f = n.add_gate("f", GateKind::Or, vec![g1, g2]);
        n.add_output("f", f);
        let aig = to_aig(&n);
        // g1 and g2 collapse; f = OR(x, x) = x: just one AND survives.
        assert_eq!(
            aig.signals()
                .filter(|&s| matches!(aig.kind(s), NodeKind::Gate(GateKind::And)))
                .count(),
            1
        );
    }

    #[test]
    fn builder_or_and_xor_identities() {
        let mut b = AigBuilder::new("t");
        let a = b.out.add_input("a");
        let c = b.out.add_input("c");
        let or1 = b.or2(a, c);
        let or2 = b.or2(c, a);
        assert_eq!(or1, or2, "or is hashed commutatively");
        let x1 = b.xor2(a, c);
        let x2 = b.xor2(c, a);
        assert_eq!(x1, x2);
        let nn = b.not(a);
        let back = b.not(nn);
        assert_eq!(back, a, "double inversion cancels in the builder");
    }
}
