//! Gate kinds supported by the netlist (the ISCAS-89 primitive set plus
//! XNOR, which appears in some benchmark distributions).

use std::fmt;

/// Logic function of a multi-input gate.
///
/// `Not` and `Buf` are unary; every other kind accepts two or more fanins
/// ([`crate::Netlist::add_gate`] validates arity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Conjunction of all fanins.
    And,
    /// Disjunction of all fanins.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Parity of all fanins.
    Xor,
    /// Complemented parity.
    Xnor,
    /// Inverter (single fanin).
    Not,
    /// Buffer (single fanin).
    Buf,
}

impl GateKind {
    /// Evaluates the gate on bit-parallel words, one bit per pattern.
    pub fn eval_words(self, fanins: &[u64]) -> u64 {
        match self {
            GateKind::And => fanins.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Or => fanins.iter().copied().fold(0, |a, b| a | b),
            GateKind::Nand => !fanins.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Nor => !fanins.iter().copied().fold(0, |a, b| a | b),
            GateKind::Xor => fanins.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Xnor => !fanins.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Not => !fanins[0],
            GateKind::Buf => fanins[0],
        }
    }

    /// Is this a single-input gate?
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Number of two-input AND nodes in the gate's and-inverter-graph
    /// expansion with `n` fanins — inverters are free, XOR/XNOR cost three
    /// ANDs per stage (the usual AIG accounting behind the paper's `AND`
    /// column in Table 3.2).
    pub fn aig_and_count(self, n: usize) -> usize {
        match self {
            GateKind::Not | GateKind::Buf => 0,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => n.saturating_sub(1),
            GateKind::Xor | GateKind::Xnor => 3 * n.saturating_sub(1),
        }
    }

    /// The `.bench` keyword for this gate.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive).
    pub fn from_bench_name(s: &str) -> Option<GateKind> {
        Some(match s.to_ascii_uppercase().as_str() {
            "AND" => GateKind::And,
            "OR" => GateKind::Or,
            "NAND" => GateKind::Nand,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" | "INV" => GateKind::Not,
            "BUFF" | "BUF" => GateKind::Buf,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_words_basic() {
        assert_eq!(GateKind::And.eval_words(&[0b1100, 0b1010]), 0b1000);
        assert_eq!(GateKind::Or.eval_words(&[0b1100, 0b1010]), 0b1110);
        assert_eq!(GateKind::Xor.eval_words(&[0b1100, 0b1010]), 0b0110);
        assert_eq!(GateKind::Nand.eval_words(&[u64::MAX, u64::MAX]), 0);
        assert_eq!(GateKind::Not.eval_words(&[0]), u64::MAX);
        assert_eq!(GateKind::Buf.eval_words(&[42]), 42);
    }

    #[test]
    fn bench_name_round_trip() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ] {
            assert_eq!(GateKind::from_bench_name(kind.bench_name()), Some(kind));
        }
        assert_eq!(GateKind::from_bench_name("dff"), None);
        assert_eq!(GateKind::from_bench_name("inv"), Some(GateKind::Not));
    }

    #[test]
    fn aig_counts() {
        assert_eq!(GateKind::And.aig_and_count(2), 1);
        assert_eq!(GateKind::And.aig_and_count(4), 3);
        assert_eq!(GateKind::Xor.aig_and_count(2), 3);
        assert_eq!(GateKind::Not.aig_and_count(1), 0);
    }
}
