//! Sequential gate-level netlists for the `symbi` logic-synthesis suite.
//!
//! The [`Netlist`] type models a synchronous sequential circuit the way the
//! ISCAS-89 benchmarks do: primary inputs, primary outputs, D flip-flops
//! (latches, in the paper's terminology) with an initial value, and
//! multi-input logic gates. On top of it this crate provides:
//!
//! - [`bench`]: ISCAS-89 `.bench` format parsing and writing,
//! - [`blif`]: a BLIF subset (`.names` covers are expanded to gates),
//! - [`aiger`]: AIGER 1.9 ASCII and binary and/inverter-graph files,
//! - [`sim`]: 64-way parallel sequential simulation,
//! - [`clean`]: the paper's structural pre-processing — removal of cloned,
//!   dead, and constant latches (§3.6), plus constant propagation and
//!   structural hashing,
//! - [`cone`]: extraction of combinational cones as BDDs,
//! - [`stats`]: size metrics including the `and/inv` expansion count used
//!   in Table 3.2,
//! - [`sweep`]: fraig-style SAT sweeping — simulation-guided equivalence
//!   classes refined by incremental SAT, merging functionally identical
//!   nodes structural hashing cannot see.
//!
//! # Example
//!
//! ```
//! use symbi_netlist::{GateKind, Netlist};
//!
//! let mut n = Netlist::new("toggle");
//! let en = n.add_input("en");
//! let q = n.add_latch("q", false);
//! let t = n.add_gate("t", GateKind::Xor, vec![en, q]);
//! n.set_latch_next(q, t);
//! n.add_output("out", t);
//! assert_eq!(n.num_latches(), 1);
//! ```

pub mod aig;
pub mod aiger;
pub mod bench;
pub mod blif;
pub mod clean;
pub mod cone;
mod gate;
mod netlist;
pub mod sec;
pub mod sim;
pub mod stats;
pub mod sweep;

pub use gate::GateKind;
pub use netlist::{Netlist, NodeKind, ParseNetlistError, SignalId};
