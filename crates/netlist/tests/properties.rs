//! Property-based tests over randomly generated netlists: format round
//! trips, cleanup and AIG lowering must preserve sequential behaviour.

use proptest::prelude::*;
use symbi_netlist::{aig, aiger, bench, blif, clean, sim, GateKind, Netlist, SignalId};

/// Strategy description of a random sequential netlist: a seed plus size
/// knobs; the netlist itself is built deterministically from them.
#[derive(Debug, Clone)]
struct NetSpec {
    seed: u64,
    inputs: usize,
    latches: usize,
    gates: usize,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    (any::<u64>(), 1usize..5, 0usize..5, 1usize..25).prop_map(|(seed, inputs, latches, gates)| {
        NetSpec { seed, inputs, latches, gates }
    })
}

fn build(spec: &NetSpec) -> Netlist {
    let mut state = spec.seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut n = Netlist::new("prop");
    let mut pool: Vec<SignalId> = Vec::new();
    for i in 0..spec.inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let latches: Vec<SignalId> =
        (0..spec.latches).map(|i| n.add_latch(format!("q{i}"), next() & 1 == 1)).collect();
    pool.extend(latches.iter().copied());
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for g in 0..spec.gates {
        let kind = kinds[(next() % 8) as usize];
        let arity = if kind.is_unary() { 1 } else { 1 + (next() % 3) as usize + 1 };
        let fanins: Vec<SignalId> =
            (0..arity).map(|_| pool[(next() % pool.len() as u64) as usize]).collect();
        let fanins = if kind.is_unary() { vec![fanins[0]] } else { fanins };
        pool.push(n.add_gate(format!("g{g}"), kind, fanins));
    }
    for (i, &l) in latches.iter().enumerate() {
        let src = pool[(next() % pool.len() as u64) as usize];
        n.set_latch_next(l, src);
        let _ = i;
    }
    // Two outputs from the tail of the pool.
    n.add_output("o0", pool[pool.len() - 1]);
    n.add_output("o1", pool[(next() % pool.len() as u64) as usize]);
    // And one whose name collides with an (often unrelated) internal
    // signal — the writers must disambiguate, or parse-back rebinds it.
    let stolen = n.signal_name(pool[(next() % pool.len() as u64) as usize]).to_string();
    n.add_output(stolen, pool[(next() % pool.len() as u64) as usize]);
    n
}

/// Deterministically mangles well-formed netlist text: char deletions,
/// insertions of format-significant tokens, line swaps, duplications, and
/// truncation. The result is usually malformed in interesting ways —
/// exactly what a total parser has to survive.
fn mangle(text: &str, seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const TOKENS: &[&str] = &[
        "(", ")", ",", "=", "#", ".", "\\", "\n", " ", "INPUT", "OUTPUT", "DFF", "AND(",
        ".names", ".latch", ".inputs", ".end", "0", "1", "-", "é", "\t",
    ];
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    for _ in 0..1 + next() % 8 {
        if lines.is_empty() {
            break;
        }
        let i = (next() % lines.len() as u64) as usize;
        match next() % 6 {
            0 => {
                // Delete a char (char-boundary safe).
                if let Some((pos, ch)) = lines[i].char_indices().last() {
                    let cut = (next() % (pos as u64 + 1)) as usize;
                    let cut = lines[i]
                        .char_indices()
                        .map(|(p, _)| p)
                        .take_while(|&p| p <= cut)
                        .last()
                        .unwrap_or(pos);
                    lines[i].remove(cut);
                    let _ = ch;
                }
            }
            1 => {
                // Insert a token at a char boundary.
                let tok = TOKENS[(next() % TOKENS.len() as u64) as usize];
                let boundaries: Vec<usize> = lines[i]
                    .char_indices()
                    .map(|(p, _)| p)
                    .chain([lines[i].len()])
                    .collect();
                let at = boundaries[(next() % boundaries.len() as u64) as usize];
                lines[i].insert_str(at, tok);
            }
            2 => {
                let j = (next() % lines.len() as u64) as usize;
                lines.swap(i, j);
            }
            3 => {
                let dup = lines[i].clone();
                lines.insert(i, dup);
            }
            4 => {
                lines.truncate(i);
            }
            _ => {
                lines.remove(i);
            }
        }
    }
    lines.join("\n")
}

/// Parser errors must point at a source line: mangled input may fail
/// for any reason, but never with a nonsensical position.
fn assert_positioned(e: &symbi_netlist::ParseNetlistError) {
    use symbi_netlist::ParseNetlistError::*;
    match e {
        Syntax { line, .. } | DuplicateName { line, .. } => {
            assert!(*line >= 1, "unpositioned parse error: {e}");
        }
        // Global properties (e.g. a combinational cycle) have no single
        // offending line.
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bench_parser_never_panics(spec in net_spec(), mseed in any::<u64>()) {
        let n = build(&spec);
        let mangled = mangle(&bench::write(&n), mseed);
        // Must return Ok or Err; a panic fails the test.
        let _ = bench::parse(&mangled);
    }

    #[test]
    fn blif_parser_never_panics(spec in net_spec(), mseed in any::<u64>()) {
        let n = build(&spec);
        let mangled = mangle(&blif::write(&n), mseed);
        let _ = blif::parse(&mangled);
    }

    #[test]
    fn cross_format_confusion_never_panics(spec in net_spec(), mseed in any::<u64>()) {
        // Feed each parser the other format's text, mangled or not.
        let n = build(&spec);
        let _ = bench::parse(&blif::write(&n));
        let _ = blif::parse(&bench::write(&n));
        let _ = bench::parse(&mangle(&blif::write(&n), mseed));
        let _ = blif::parse(&mangle(&bench::write(&n), mseed));
    }

    #[test]
    fn generated_netlists_validate(spec in net_spec()) {
        let n = build(&spec);
        prop_assert!(n.validate().is_ok());
        prop_assert!(n.topo_order().is_ok());
    }

    #[test]
    fn bench_round_trip_preserves_behaviour(spec in net_spec()) {
        let n = build(&spec);
        let text = bench::write(&n);
        let back = bench::parse(&text).expect("writer output parses");
        prop_assert_eq!(back.num_inputs(), n.num_inputs());
        prop_assert_eq!(back.num_latches(), n.num_latches());
        prop_assert!(sim::random_co_simulation(&n, &back, 24, spec.seed));
    }

    #[test]
    fn blif_round_trip_preserves_behaviour(spec in net_spec()) {
        let n = build(&spec);
        let text = blif::write(&n);
        let back = blif::parse(&text).expect("writer output parses");
        prop_assert!(sim::random_co_simulation(&n, &back, 24, spec.seed ^ 0xabc));
    }

    #[test]
    fn cleanup_preserves_behaviour_and_shrinks(spec in net_spec()) {
        let n = build(&spec);
        let (cleaned, _) = clean::clean(&n);
        prop_assert!(cleaned.validate().is_ok());
        // Canonicalization may split NAND/NOR/XNOR into gate+inverter, so
        // raw signal count can grow, but never past one inverter per gate.
        prop_assert!(cleaned.num_signals() <= 2 * n.num_signals() + 2);
        let before = symbi_netlist::stats::stats(&n);
        let after = symbi_netlist::stats::stats(&cleaned);
        prop_assert!(after.aig_ands <= before.aig_ands, "and/inv size never grows");
        prop_assert!(sim::random_co_simulation(&n, &cleaned, 32, spec.seed ^ 0x123));
    }

    #[test]
    fn aig_lowering_preserves_behaviour(spec in net_spec()) {
        let n = build(&spec);
        let lowered = aig::to_aig(&n);
        prop_assert!(sim::random_co_simulation(&n, &lowered, 24, spec.seed ^ 0x777));
        // AND gates are binary, inverters unary, nothing else.
        for s in lowered.signals() {
            if let symbi_netlist::NodeKind::Gate(kind) = lowered.kind(s) {
                match kind {
                    GateKind::And => prop_assert_eq!(lowered.fanins(s).len(), 2),
                    GateKind::Not => prop_assert_eq!(lowered.fanins(s).len(), 1),
                    other => prop_assert!(false, "unexpected gate {} in AIG", other),
                }
            }
        }
    }

    #[test]
    fn cleanup_is_idempotent(spec in net_spec()) {
        let n = build(&spec);
        let (once, _) = clean::clean(&n);
        let (twice, report) = clean::clean(&once);
        prop_assert_eq!(once.num_signals(), twice.num_signals());
        prop_assert_eq!(report.dead_latches, 0);
        prop_assert_eq!(report.constant_latches, 0);
        prop_assert_eq!(report.cloned_latches, 0);
    }

    #[test]
    fn aiger_round_trip_preserves_behaviour(spec in net_spec()) {
        let n = build(&spec);
        let ascii = aiger::write_ascii(&n);
        let binary = aiger::write_binary(&n);
        let from_ascii = aiger::parse_ascii(&ascii).expect("writer ascii parses");
        let from_binary = aiger::parse_binary(&binary).expect("writer binary parses");
        prop_assert_eq!(from_ascii.num_inputs(), n.num_inputs());
        prop_assert_eq!(from_ascii.num_latches(), n.num_latches());
        prop_assert_eq!(from_ascii.num_outputs(), n.num_outputs());
        prop_assert!(sim::random_co_simulation(&n, &from_ascii, 24, spec.seed ^ 0xa1a));
        prop_assert!(sim::random_co_simulation(&n, &from_binary, 24, spec.seed ^ 0xb1b));
    }

    #[test]
    fn aiger_reemission_is_byte_stable_across_forms(spec in net_spec()) {
        // The writers are canonical: one round trip reaches a fixpoint,
        // and both forms re-emit identical bytes regardless of which
        // form was parsed.
        let n = build(&spec);
        let ascii = aiger::write_ascii(&n);
        let binary = aiger::write_binary(&n);
        let from_ascii = aiger::parse_ascii(&ascii).expect("writer ascii parses");
        let from_binary = aiger::parse_binary(&binary).expect("writer binary parses");
        prop_assert_eq!(aiger::write_ascii(&from_ascii), ascii.clone());
        prop_assert_eq!(aiger::write_binary(&from_ascii), binary.clone());
        prop_assert_eq!(aiger::write_ascii(&from_binary), ascii);
        prop_assert_eq!(aiger::write_binary(&from_binary), binary);
    }

    #[test]
    fn aiger_ascii_parser_never_panics(spec in net_spec(), mseed in any::<u64>()) {
        let n = build(&spec);
        let mangled = mangle(&aiger::write_ascii(&n), mseed);
        if let Err(e) = aiger::parse_ascii(&mangled) {
            assert_positioned(&e);
        }
        // Cross-format confusion: AIGER text fed to the other parsers
        // and vice versa must also return, not panic.
        let _ = aiger::parse_ascii(&bench::write(&n));
        let _ = bench::parse(&mangled);
    }

    #[test]
    fn aiger_binary_parser_never_panics(spec in net_spec(), mseed in any::<u64>()) {
        // Byte-level mutations (bit flips, truncations, splices) attack
        // the varint decoder and section framing directly.
        let n = build(&spec);
        let mut bytes = aiger::write_binary(&n);
        let mut state = mseed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..1 + next() % 8 {
            if bytes.is_empty() {
                break;
            }
            let i = (next() % bytes.len() as u64) as usize;
            match next() % 4 {
                0 => bytes[i] ^= (next() % 255 + 1) as u8,
                1 => bytes.truncate(i),
                2 => bytes.insert(i, (next() % 256) as u8),
                _ => {
                    bytes.remove(i);
                }
            }
        }
        if let Err(e) = aiger::parse_binary(&bytes) {
            assert_positioned(&e);
        }
        let _ = aiger::parse_bytes(&bytes);
    }

    #[test]
    fn stats_are_consistent(spec in net_spec()) {
        let n = build(&spec);
        let s = symbi_netlist::stats::stats(&n);
        prop_assert_eq!(s.inputs, n.num_inputs());
        prop_assert_eq!(s.latches, n.num_latches());
        prop_assert_eq!(s.gates, n.num_gates());
        prop_assert!(s.depth <= s.gates);
        // AIG lowering cannot beat the and/inv estimate by definition of
        // the estimate... but hashing may: only check an upper bound.
        let lowered = aig::to_aig(&n);
        let ls = symbi_netlist::stats::stats(&lowered);
        prop_assert!(ls.aig_ands <= s.aig_ands);
    }
}
