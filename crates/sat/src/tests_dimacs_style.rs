//! Randomized stress tests: the solver against a brute-force oracle on
//! random 3-CNF instances around the phase-transition density.

use crate::{Lit, Solver, Var};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    'outer: for bits in 0u32..1 << num_vars {
        for clause in clauses {
            let ok = clause.iter().any(|&(v, pos)| (bits >> v & 1 == 1) == pos);
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

#[test]
fn random_3cnf_matches_brute_force() {
    let mut rng = Rng(0x1234_5678_9abc_def1);
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for trial in 0..200 {
        let num_vars = 5 + (rng.next() % 6) as usize; // 5..10
        // Around 4.3 clauses/var straddles the SAT/UNSAT transition.
        let num_clauses = num_vars * 4 + (rng.next() % 8) as usize;
        let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| ((rng.next() % num_vars as u64) as usize, rng.next() & 1 == 1))
                    .collect()
            })
            .collect();
        let expect = brute_force_sat(num_vars, &clauses);
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
        for clause in &clauses {
            s.add_clause(clause.iter().map(|&(v, pos)| Lit::with_phase(vars[v], pos)));
        }
        let got = s.solve().is_sat();
        assert_eq!(got, expect, "trial {trial}");
        if got {
            sat_seen += 1;
            // Verify the model.
            for clause in &clauses {
                let ok = clause
                    .iter()
                    .any(|&(v, pos)| s.value(vars[v]).unwrap_or(false) == pos);
                assert!(ok, "trial {trial}: model violates a clause");
            }
        } else {
            unsat_seen += 1;
        }
    }
    assert!(sat_seen > 20, "test corpus should include satisfiable instances");
    assert!(unsat_seen > 20, "test corpus should include unsatisfiable instances");
}

#[test]
fn assumption_solving_matches_clause_addition() {
    // solve_with_assumptions([l…]) must agree with adding the unit
    // clauses and solving, on random instances.
    let mut rng = Rng(0xfeed_beef_1234_5678);
    for trial in 0..100 {
        let num_vars = 5 + (rng.next() % 4) as usize;
        let num_clauses = num_vars * 3;
        let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| ((rng.next() % num_vars as u64) as usize, rng.next() & 1 == 1))
                    .collect()
            })
            .collect();
        let assumption_var = (rng.next() % num_vars as u64) as usize;
        let assumption_phase = rng.next() & 1 == 1;

        let build = |with_unit: bool| -> (Solver, Vec<Var>) {
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in &clauses {
                s.add_clause(
                    clause.iter().map(|&(v, pos)| Lit::with_phase(vars[v], pos)),
                );
            }
            if with_unit {
                s.add_clause([Lit::with_phase(vars[assumption_var], assumption_phase)]);
            }
            (s, vars)
        };
        let (mut with_assumption, vars) = build(false);
        let a = Lit::with_phase(vars[assumption_var], assumption_phase);
        let via_assumption = with_assumption.solve_with_assumptions(&[a]).is_sat();
        let (mut with_unit, _) = build(true);
        let via_unit = with_unit.solve().is_sat();
        assert_eq!(via_assumption, via_unit, "trial {trial}");
    }
}

#[test]
fn solver_is_reusable_across_many_queries() {
    // Incremental use: alternate assumptions over the same instance.
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
    // Ring of implications v0 → v1 → … → v7 → v0.
    for i in 0..8 {
        s.add_clause([Lit::neg(vars[i]), Lit::pos(vars[(i + 1) % 8])]);
    }
    for i in 0..8 {
        assert!(s.solve_with_assumptions(&[Lit::pos(vars[i])]).is_sat());
        assert!(s.solve_with_assumptions(&[Lit::neg(vars[i])]).is_sat());
        // Asserting vi and ¬vj forces a contradiction through the ring.
        let r = s.solve_with_assumptions(&[Lit::pos(vars[i]), Lit::neg(vars[(i + 3) % 8])]);
        assert!(!r.is_sat(), "implication ring violated at {i}");
    }
}
