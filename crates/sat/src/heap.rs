//! Indexed binary max-heap over VSIDS activities.
//!
//! The heap stores variable indices ordered by an external activity
//! array (passed into every operation so the solver keeps sole ownership
//! of the scores). `pos` maps each variable to its slot in `heap`, which
//! makes membership tests O(1) and lets [`OrderHeap::bumped`] restore the
//! heap property with a single sift-up after an activity increase —
//! activities only ever grow between rescales, and a rescale multiplies
//! every score by the same constant, so no other reordering can occur.
//!
//! Invariants (checked in debug builds by [`OrderHeap::assert_valid`]):
//! - `heap[pos[v]] == v` for every member `v`; `pos[v] == ABSENT` otherwise;
//! - `act[heap[parent(i)]] >= act[heap[i]]` for every non-root slot `i`.

const ABSENT: u32 = u32::MAX;

/// An indexed max-heap of variable indices keyed by activity.
#[derive(Debug, Default, Clone)]
pub(crate) struct OrderHeap {
    heap: Vec<u32>,
    pos: Vec<u32>,
}

impl OrderHeap {
    /// Registers a fresh variable (initially absent from the heap).
    pub fn push_var(&mut self) {
        self.pos.push(ABSENT);
    }

    /// Is `v` currently in the heap?
    pub fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    /// Inserts `v` unless already present. O(log n).
    pub fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        let slot = self.heap.len();
        self.heap.push(v);
        self.pos[v as usize] = slot as u32;
        self.sift_up(slot, act);
    }

    /// Removes and returns the variable with the highest activity. O(log n).
    pub fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = ABSENT;
        if top != last {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores order after `v`'s activity increased. O(log n).
    pub fn bumped(&mut self, v: u32, act: &[f64]) {
        let slot = self.pos[v as usize];
        if slot != ABSENT {
            self.sift_up(slot as usize, act);
        }
    }

    /// Heap ordering: higher activity first, lower variable index on
    /// ties. The index tie-break matches the "first maximum" the old
    /// linear scan picked, keeping decision order (and thus search
    /// trajectories) stable when many variables share a score.
    fn precedes(a: u32, b: u32, act: &[f64]) -> bool {
        let (aa, ab) = (act[a as usize], act[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::precedes(self.heap[i], self.heap[parent], act) {
                break;
            }
            self.swap_slots(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let mut largest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len()
                    && Self::precedes(self.heap[child], self.heap[largest], act)
                {
                    largest = child;
                }
            }
            if largest == i {
                return;
            }
            self.swap_slots(i, largest);
            i = largest;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }

    /// Debug-only structural check of both invariants.
    #[cfg(debug_assertions)]
    #[allow(dead_code)]
    pub fn assert_valid(&self, act: &[f64]) {
        for (slot, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[v as usize], slot as u32, "pos/heap out of sync");
            if slot > 0 {
                let parent = self.heap[(slot - 1) / 2];
                assert!(
                    !Self::precedes(v, parent, act),
                    "heap property violated at slot {slot}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = [0.5, 3.0, 1.0, 2.0, 0.0];
        let mut h = OrderHeap::default();
        for v in 0..5 {
            h.push_var();
            h.insert(v, &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&act)).collect();
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn reinsert_and_bump() {
        let mut act = vec![0.0; 4];
        let mut h = OrderHeap::default();
        for v in 0..4 {
            h.push_var();
            h.insert(v, &act);
        }
        assert!(h.contains(2));
        // Duplicate insert is a no-op.
        h.insert(2, &act);
        // Bump 3 to the top.
        act[3] = 9.0;
        h.bumped(3, &act);
        assert_eq!(h.pop_max(&act), Some(3));
        assert!(!h.contains(3));
        // Bumping an absent variable is a no-op; reinsertion honors order.
        act[0] = 5.0;
        h.bumped(0, &act);
        act[3] = 1.0;
        h.bumped(3, &act);
        h.insert(3, &act);
        assert_eq!(h.pop_max(&act), Some(0));
        #[cfg(debug_assertions)]
        h.assert_valid(&act);
    }
}
