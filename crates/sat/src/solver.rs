//! The CDCL solver core.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable with a phase. Encoded as `var << 1 | sign`
/// (sign 1 = negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Literal of `v` with the given phase (`true` = positive).
    pub fn with_phase(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Is this literal negated?
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// Outcome of [`Solver::solve`] / [`Solver::solve_with_assumptions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (read it with [`Solver::value`]).
    Sat,
    /// Unsatisfiable; under assumptions, `core` lists a subset of the
    /// assumption literals sufficient for the refutation.
    Unsat {
        /// Subset of the assumptions used to derive the contradiction
        /// (empty when the formula is unsatisfiable outright).
        core: Vec<Lit>,
    },
}

impl SolveResult {
    /// Is this the satisfiable outcome?
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat)
    }
}

/// Outcome of [`Solver::solve_budgeted`] /
/// [`Solver::solve_budgeted_with_assumptions`]: a [`SolveResult`] plus
/// the `Unknown` verdict of a solver that ran out of conflict budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetedSolveResult {
    /// A satisfying assignment was found (read it with [`Solver::value`]).
    Sat,
    /// Unsatisfiable; under assumptions, `core` lists a subset of the
    /// assumption literals sufficient for the refutation.
    Unsat {
        /// Subset of the assumptions used to derive the contradiction.
        core: Vec<Lit>,
    },
    /// The conflict budget ran out before a verdict. The solver has
    /// backtracked to level 0 and remains usable — learnt clauses are
    /// kept, so a retry with a larger budget resumes smarter.
    Unknown,
}

impl BudgetedSolveResult {
    /// Is this the satisfiable outcome?
    pub fn is_sat(&self) -> bool {
        matches!(self, BudgetedSolveResult::Sat)
    }

    /// Did the budget run out before a verdict?
    pub fn is_unknown(&self) -> bool {
        matches!(self, BudgetedSolveResult::Unknown)
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

type ClauseRef = u32;

/// A CDCL SAT solver (see the crate docs for the feature list).
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit.code()] = clauses currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assigns: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phases for phase-saving heuristic.
    polarity: Vec<bool>,
    ok: bool,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Statistics: conflicts, decisions, propagations.
    pub stats: SolverStats,
}

/// Search statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver { var_inc: 1.0, ok: true, ..Default::default() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var().index()].map(|b| b ^ l.is_neg())
    }

    /// Model value of `v` after a SAT answer (`None` if unassigned — the
    /// variable was irrelevant).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index()]
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called after a solve left decisions on the trail (the
    /// solver always backtracks fully, so this only guards misuse) or if
    /// a literal mentions an undeclared variable.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert!(self.trail_lim.is_empty(), "clauses must be added at decision level 0");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            assert!(l.var().index() < self.num_vars(), "undeclared variable {l}");
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology / falsified-literal simplification at level 0.
        let mut simplified = Vec::with_capacity(lits.len());
        for &l in &lits {
            if lits.contains(&!l) {
                return true; // tautology: always satisfied
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied
                Some(false) => {}          // drop falsified literal
                None => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(simplified);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) {
        let cref = self.clauses.len() as ClauseRef;
        self.watches[(!lits[0]).code()].push(cref);
        self.watches[(!lits[1]).code()].push(cref);
        self.clauses.push(Clause { lits });
    }

    fn enqueue(&mut self, l: Lit, from: Option<ClauseRef>) -> bool {
        match self.lit_value(l) {
            Some(b) => b,
            None => {
                let v = l.var().index();
                self.assigns[v] = Some(!l.is_neg());
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = from;
                self.polarity[v] = !l.is_neg();
                self.trail.push(l);
                self.stats.propagations += 1;
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ¬p must find a new watch or propagate.
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let cref = watchers[i];
                let keep = {
                    let lits = &mut self.clauses[cref as usize].lits;
                    // Normalize: watched literals are lits[0], lits[1];
                    // the falsified one goes to position 1.
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], !p);
                    true
                };
                let _ = keep;
                let first = self.clauses[cref as usize].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue; // clause satisfied, keep watching
                }
                // Look for a new literal to watch.
                let mut new_watch = None;
                {
                    let lits = &self.clauses[cref as usize].lits;
                    for (k, &l) in lits.iter().enumerate().skip(2) {
                        if self.lit_value(l) != Some(false) {
                            new_watch = Some(k);
                            break;
                        }
                    }
                }
                if let Some(k) = new_watch {
                    let lits = &mut self.clauses[cref as usize].lits;
                    lits.swap(1, k);
                    let w = !lits[1];
                    self.watches[w.code()].push(cref);
                    watchers.swap_remove(i);
                    continue; // do not advance i: swapped a new element in
                }
                // No new watch: clause is unit or conflicting.
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore remaining watchers and bail.
                    self.watches[p.code()].append(&mut watchers);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            // Non-removed watchers keep watching ¬p.
            let existing = std::mem::take(&mut self.watches[p.code()]);
            watchers.extend(existing);
            self.watches[p.code()] = watchers;
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for &l in &self.trail[lim..] {
            let v = l.var().index();
            self.assigns[v] = None;
            self.reason[v] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis: returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        loop {
            {
                let lits: Vec<Lit> = self.clauses[cref as usize].lits.clone();
                for &q in &lits {
                    if Some(q) == p {
                        continue;
                    }
                    let v = q.var();
                    if !self.seen[v.index()] && self.level[v.index()] > 0 {
                        self.seen[v.index()] = true;
                        self.bump(v);
                        if self.level[v.index()] >= self.decision_level() {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Find the next trail literal at the current level to resolve.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            cref = self.reason[lit.var().index()].expect("non-decision has a reason");
            p = Some(lit);
        }
        // Backjump level = highest level among the non-UIP literals.
        let mut bt = 0u32;
        let mut second = 1usize;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                second = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, second);
        }
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt)
    }

    /// Collects the assumption literals underlying the falsification of
    /// `lit` (MiniSat's `analyzeFinal`): walks the reason graph down to
    /// decision literals, which during assumption handling are exactly
    /// the assumptions.
    fn analyze_final(&mut self, lit: Lit, assumptions: &[Lit]) -> Vec<Lit> {
        let mut core = Vec::new();
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[lit.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let t = self.trail[i];
            let v = t.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision — under assumption handling, an assumption.
                    if let Some(&a) = assumptions.iter().find(|&&a| a.var() == v) {
                        core.push(a);
                    }
                }
                Some(cref) => {
                    let lits = self.clauses[cref as usize].lits.clone();
                    for q in lits {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[lit.var().index()] = false;
        for s in &mut self.seen {
            *s = false;
        }
        core
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        let mut best: Option<Var> = None;
        let mut best_act = f64::NEG_INFINITY;
        for i in 0..self.num_vars() {
            if self.assigns[i].is_none() && self.activity[i] > best_act {
                best_act = self.activity[i];
                best = Some(Var(i as u32));
            }
        }
        best.map(|v| Lit::with_phase(v, self.polarity[v.index()]))
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        match self.search(assumptions, None) {
            BudgetedSolveResult::Sat => SolveResult::Sat,
            BudgetedSolveResult::Unsat { core } => SolveResult::Unsat { core },
            BudgetedSolveResult::Unknown => {
                unreachable!("unlimited search cannot exhaust its budget")
            }
        }
    }

    /// Solves with at most `max_conflicts` conflicts; returns
    /// [`BudgetedSolveResult::Unknown`] if the budget runs out first.
    /// The solver stays usable after an `Unknown` — clauses learnt
    /// during the bounded run are kept for the next attempt.
    pub fn solve_budgeted(&mut self, max_conflicts: u64) -> BudgetedSolveResult {
        self.search(&[], Some(max_conflicts))
    }

    /// Budgeted solving under assumption literals; see
    /// [`Solver::solve_budgeted`].
    pub fn solve_budgeted_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> BudgetedSolveResult {
        self.search(assumptions, Some(max_conflicts))
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
    ) -> BudgetedSolveResult {
        self.backtrack_to(0);
        if !self.ok {
            return BudgetedSolveResult::Unsat { core: Vec::new() };
        }
        if let Some(_c) = self.propagate() {
            self.ok = false;
            return BudgetedSolveResult::Unsat { core: Vec::new() };
        }
        // Enqueue assumptions, each on its own decision level.
        for &a in assumptions {
            match self.lit_value(a) {
                Some(true) => {
                    self.new_decision_level();
                }
                Some(false) => {
                    let core = self.analyze_final(!a, assumptions);
                    let mut core = core;
                    core.push(a);
                    core.sort_unstable();
                    core.dedup();
                    self.backtrack_to(0);
                    return BudgetedSolveResult::Unsat { core };
                }
                None => {
                    self.new_decision_level();
                    self.enqueue(a, None);
                    if let Some(conflict) = self.propagate() {
                        // Conflict directly under assumptions.
                        let lits = self.clauses[conflict as usize].lits.clone();
                        let mut core = Vec::new();
                        for l in lits {
                            core.extend(self.analyze_final(!l, assumptions));
                        }
                        for &x in assumptions {
                            if x.var() == a.var() {
                                core.push(x);
                            }
                        }
                        core.sort_unstable();
                        core.dedup();
                        self.backtrack_to(0);
                        return BudgetedSolveResult::Unsat { core };
                    }
                }
            }
        }
        let assumption_level = self.decision_level();

        // Main CDCL loop with geometric restarts.
        let mut conflicts_until_restart = 100u64;
        let mut conflict_budget = conflicts_until_restart;
        let mut remaining = max_conflicts;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if let Some(r) = remaining.as_mut() {
                    if *r == 0 {
                        // Budget spent: no verdict. Keep learnt clauses,
                        // drop decisions, stay reusable.
                        self.backtrack_to(0);
                        return BudgetedSolveResult::Unknown;
                    }
                    *r -= 1;
                }
                if self.decision_level() <= assumption_level {
                    // Refuted under the assumptions.
                    let lits = self.clauses[conflict as usize].lits.clone();
                    let mut core = Vec::new();
                    for l in lits {
                        core.extend(self.analyze_final(!l, assumptions));
                    }
                    core.sort_unstable();
                    core.dedup();
                    self.backtrack_to(0);
                    if assumptions.is_empty() {
                        self.ok = false;
                    }
                    return BudgetedSolveResult::Unsat { core };
                }
                let (learnt, bt_level) = self.analyze(conflict);
                let bt = bt_level.max(assumption_level);
                self.backtrack_to(bt);
                let assert_lit = learnt[0];
                if learnt.len() == 1 && bt == 0 {
                    self.enqueue(assert_lit, None);
                } else {
                    let cref = self.clauses.len() as ClauseRef;
                    if learnt.len() >= 2 {
                        self.watches[(!learnt[0]).code()].push(cref);
                        self.watches[(!learnt[1]).code()].push(cref);
                        self.clauses.push(Clause { lits: learnt });
                        self.enqueue(assert_lit, Some(cref));
                    } else {
                        self.enqueue(assert_lit, None);
                    }
                }
                self.var_inc *= 1.0 / 0.95; // VSIDS decay
                conflict_budget = conflict_budget.saturating_sub(1);
                if conflict_budget == 0 {
                    // Restart: keep learnt clauses, drop decisions.
                    self.stats.restarts += 1;
                    conflicts_until_restart = conflicts_until_restart * 3 / 2;
                    conflict_budget = conflicts_until_restart;
                    self.backtrack_to(assumption_level);
                }
            } else {
                match self.pick_branch() {
                    None => return BudgetedSolveResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32], vars: &[Var]) -> Vec<Lit> {
        spec.iter()
            .map(|&i| {
                let v = vars[(i.unsigned_abs() - 1) as usize];
                if i > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect()
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(lits(&[1], &vars));
        s.add_clause(lits(&[-1, 2], &vars));
        s.add_clause(lits(&[-2, 3], &vars));
        s.add_clause(lits(&[-3, 4], &vars));
        assert!(s.solve().is_sat());
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        assert!(!s.add_clause([Lit::neg(v)]));
        assert!(!s.solve().is_sat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D pigeon/hole grid
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Each pigeon somewhere; no two
        // pigeons share a hole.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..3).map(|_| (0..2).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause([Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 = 1 → x2 = 0, x3 = 1.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        // x1 ⊕ x2: (x1∨x2)(¬x1∨¬x2)
        s.add_clause(lits(&[1, 2], &vars));
        s.add_clause(lits(&[-1, -2], &vars));
        s.add_clause(lits(&[2, 3], &vars));
        s.add_clause(lits(&[-2, -3], &vars));
        s.add_clause(lits(&[1], &vars));
        assert!(s.solve().is_sat());
        assert_eq!(s.value(vars[0]), Some(true));
        assert_eq!(s.value(vars[1]), Some(false));
        assert_eq!(s.value(vars[2]), Some(true));
    }

    #[test]
    fn assumptions_and_core() {
        // (a ∨ b), (¬a ∨ c), (¬b ∨ c): assuming ¬c forces ¬a, ¬b → conflict.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::pos(c)]);
        s.add_clause([Lit::neg(b), Lit::pos(c)]);
        // Satisfiable outright.
        assert!(s.solve().is_sat());
        // Unsat under ¬c, and the core mentions ¬c.
        match s.solve_with_assumptions(&[Lit::neg(c)]) {
            SolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::neg(c)), "core {core:?}");
            }
            SolveResult::Sat => panic!("must be unsat under ¬c"),
        }
        // Solver remains usable and satisfiable afterwards.
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[Lit::pos(c)]).is_sat());
    }

    #[test]
    fn core_is_subset_of_assumptions() {
        // Independent constraint islands: only the island actually
        // falsified shows in the core.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.add_clause([Lit::pos(x)]);
        match s.solve_with_assumptions(&[Lit::pos(y), Lit::neg(x), Lit::pos(z)]) {
            SolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::neg(x)));
                assert!(!core.contains(&Lit::pos(y)), "y is irrelevant: {core:?}");
                assert!(!core.contains(&Lit::pos(z)), "z is irrelevant: {core:?}");
            }
            SolveResult::Sat => panic!("must be unsat"),
        }
    }

    #[test]
    fn tautologies_ignored() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([Lit::pos(v), Lit::neg(v)]));
        assert!(s.solve().is_sat());
    }

    /// Pigeonhole instance `n+1` pigeons into `n` holes — unsatisfiable
    /// and exponentially hard for resolution, so a small conflict
    /// budget is guaranteed to run out on a large enough `n`.
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D pigeon/hole grid
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..n + 1).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n {
            for i1 in 0..n + 1 {
                for i2 in i1 + 1..n + 1 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        s
    }

    #[test]
    fn budgeted_solve_returns_unknown_then_finishes() {
        let mut s = pigeonhole(7);
        let before = s.stats.conflicts;
        assert!(s.solve_budgeted(10).is_unknown());
        assert!(s.stats.conflicts > before, "the bounded run did search");
        // The solver is still usable: the unlimited run finishes the job.
        assert!(!s.solve().is_sat());
        // And a budgeted run on an already-refuted formula is immediate.
        assert_eq!(s.solve_budgeted(0), BudgetedSolveResult::Unsat { core: Vec::new() });
    }

    #[test]
    fn budgeted_solve_agrees_on_easy_instances() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(lits(&[1, 2], &vars));
        s.add_clause(lits(&[-1, 3], &vars));
        assert!(s.solve_budgeted(1_000).is_sat());
    }

    #[test]
    fn budgeted_assumptions_keep_core_contract() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x)]);
        match s.solve_budgeted_with_assumptions(&[Lit::neg(x), Lit::pos(y)], 1_000) {
            BudgetedSolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::neg(x)));
                assert!(!core.contains(&Lit::pos(y)));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }
}
