//! The CDCL solver core.

use crate::heap::OrderHeap;
use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable with a phase. Encoded as `var << 1 | sign`
/// (sign 1 = negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Literal of `v` with the given phase (`true` = positive).
    pub fn with_phase(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Is this literal negated?
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// Outcome of [`Solver::solve`] / [`Solver::solve_with_assumptions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (read it with [`Solver::value`]).
    Sat,
    /// Unsatisfiable; under assumptions, `core` lists a subset of the
    /// assumption literals sufficient for the refutation.
    Unsat {
        /// Subset of the assumptions used to derive the contradiction
        /// (empty when the formula is unsatisfiable outright).
        core: Vec<Lit>,
    },
}

impl SolveResult {
    /// Is this the satisfiable outcome?
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat)
    }
}

/// Outcome of [`Solver::solve_budgeted`] /
/// [`Solver::solve_budgeted_with_assumptions`]: a [`SolveResult`] plus
/// the `Unknown` verdict of a solver that ran out of conflict budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetedSolveResult {
    /// A satisfying assignment was found (read it with [`Solver::value`]).
    Sat,
    /// Unsatisfiable; under assumptions, `core` lists a subset of the
    /// assumption literals sufficient for the refutation.
    Unsat {
        /// Subset of the assumptions used to derive the contradiction.
        core: Vec<Lit>,
    },
    /// The conflict budget ran out before a verdict. The solver has
    /// backtracked to level 0 and remains usable — learnt clauses are
    /// kept, so a retry with a larger budget resumes smarter.
    Unknown,
}

impl BudgetedSolveResult {
    /// Is this the satisfiable outcome?
    pub fn is_sat(&self) -> bool {
        matches!(self, BudgetedSolveResult::Sat)
    }

    /// Did the budget run out before a verdict?
    pub fn is_unknown(&self) -> bool {
        matches!(self, BudgetedSolveResult::Unknown)
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    /// Glue (literal-block-distance) recorded when the clause was learnt:
    /// the number of distinct decision levels among its literals. Lower
    /// glue predicts higher usefulness (Audemard & Simon); clauses with
    /// `lbd <= GLUE_LBD` are never deleted.
    lbd: u32,
    /// Bump-and-decay usefulness score; ties inside an LBD class are
    /// broken towards recently used clauses during database reduction.
    activity: f64,
    learnt: bool,
}

type ClauseRef = u32;

/// Learnt clauses at or below this glue level are kept forever.
const GLUE_LBD: u32 = 2;
/// Base unit (in conflicts) of the Luby restart sequence.
const RESTART_BASE: u64 = 100;

/// Where an interrupt hook is consulted during [`Solver::search`].
///
/// These are the CDCL engine's two fault-injection/cancellation safe
/// points: the top of the search loop (before unit propagation) and
/// immediately before a learnt-database reduction. At either point the
/// solver state is consistent and a bounded bail-out (backtrack to
/// level 0, return `Unknown`) keeps it reusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatCheckPoint {
    /// Top of the CDCL loop, before `propagate`.
    Propagate,
    /// Immediately before `reduce_db`.
    ReduceDb,
}

/// A caller-supplied interruption callback; returning `true` aborts the
/// running (budgeted) search with [`BudgetedSolveResult::Unknown`].
///
/// The crate is dependency-free, so resource governance lives upstream:
/// callers that own a governor install a hook that polls it (and any
/// fault plan) at each [`SatCheckPoint`]. A hook that panics unwinds
/// through `search`; the solver must then be discarded.
pub struct InterruptHook(pub Box<dyn FnMut(SatCheckPoint) -> bool + Send>);

impl std::fmt::Debug for InterruptHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InterruptHook(..)")
    }
}

/// RAII scope for an installed interrupt hook: created by
/// [`Solver::with_interrupt`], dereferences to the solver, and clears
/// the hook when dropped.
///
/// A hook that outlives its governed check is a latent panic — the next
/// *unbudgeted* `solve()` on the same solver would trip the
/// interrupted-complete-search guard. Routing every governed path
/// through this guard makes "hook cleared on all exits" a structural
/// property instead of a per-call-site obligation.
#[derive(Debug)]
pub struct InterruptGuard<'a> {
    solver: &'a mut Solver,
}

impl std::ops::Deref for InterruptGuard<'_> {
    type Target = Solver;

    fn deref(&self) -> &Solver {
        self.solver
    }
}

impl std::ops::DerefMut for InterruptGuard<'_> {
    fn deref_mut(&mut self) -> &mut Solver {
        self.solver
    }
}

impl Drop for InterruptGuard<'_> {
    fn drop(&mut self) {
        self.solver.clear_interrupt();
    }
}

/// A CDCL SAT solver (see the crate docs for the feature list).
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit.code()] = clauses currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assigns: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Branching order: an indexed max-heap over `activity`, so each
    /// decision costs O(log n) instead of a full-vector scan.
    order: OrderHeap,
    /// Saved phases for phase-saving heuristic (recorded at backtrack).
    polarity: Vec<bool>,
    ok: bool,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Literals whose `seen` bit is set during the current analysis
    /// (including extras marked by recursive minimization).
    to_clear: Vec<Lit>,
    /// Live learnt clauses (attached, not yet deleted).
    live_learnt: usize,
    reduce_enabled: bool,
    reduce_inc: usize,
    /// Live-learnt threshold that triggers the next database reduction.
    next_reduce: usize,
    /// Statistics: conflicts, decisions, propagations, clause traffic.
    pub stats: SolverStats,
    /// Optional interruption callback, polled at every [`SatCheckPoint`].
    interrupt: Option<InterruptHook>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

/// Search statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated (reason-driven enqueues only — decisions and
    /// assumption enqueues are not propagations).
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt from conflicts.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Database reductions performed.
    pub db_reductions: u64,
    /// Highest glue (LBD) of any learnt clause.
    pub max_lbd: u32,
    /// Peak number of simultaneously live learnt clauses.
    pub max_live_learnt: u64,
    /// Literals removed from learnt clauses by recursive minimization.
    pub minimized_literals: u64,
    /// Budgeted solves that returned `Unknown` and were retried once at
    /// half budget on the warm clause database
    /// ([`Solver::solve_budgeted_with_retry`]).
    pub retries: u64,
}

impl SolverStats {
    /// Accumulates `other` into `self`: counters add, high-water marks max.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.db_reductions += other.db_reductions;
        self.max_lbd = self.max_lbd.max(other.max_lbd);
        self.max_live_learnt = self.max_live_learnt.max(other.max_live_learnt);
        self.minimized_literals += other.minimized_literals;
        self.retries += other.retries;
    }

    /// Per-call effort: the counter increments since `baseline` (a copy
    /// of [`Solver::stats`] taken before the call). High-water marks
    /// (`max_lbd`, `max_live_learnt`) carry the current values, since a
    /// maximum has no meaningful difference. Incremental users — the
    /// netlist SAT sweep, the bounded equivalence checker — use this to
    /// attribute effort to individual `solve_with_assumptions` calls on
    /// one persistent solver.
    pub fn delta_since(&self, baseline: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts - baseline.conflicts,
            decisions: self.decisions - baseline.decisions,
            propagations: self.propagations - baseline.propagations,
            restarts: self.restarts - baseline.restarts,
            learnt_clauses: self.learnt_clauses - baseline.learnt_clauses,
            deleted_clauses: self.deleted_clauses - baseline.deleted_clauses,
            db_reductions: self.db_reductions - baseline.db_reductions,
            max_lbd: self.max_lbd,
            max_live_learnt: self.max_live_learnt,
            minimized_literals: self.minimized_literals - baseline.minimized_literals,
            retries: self.retries - baseline.retries,
        }
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: OrderHeap::default(),
            polarity: Vec::new(),
            ok: true,
            seen: Vec::new(),
            to_clear: Vec::new(),
            live_learnt: 0,
            reduce_enabled: true,
            reduce_inc: 300,
            next_reduce: 2000,
            stats: SolverStats::default(),
            interrupt: None,
        }
    }

    /// Installs an interruption callback consulted at every
    /// [`SatCheckPoint`]; returning `true` makes the running budgeted
    /// search bail out with [`BudgetedSolveResult::Unknown`] (the
    /// solver backtracks to level 0 and stays reusable). Unbudgeted
    /// [`Solver::solve`]/[`Solver::solve_with_assumptions`] must not be
    /// used with a hook installed — an interrupted complete search has
    /// no honest `SolveResult` and panics instead.
    pub fn set_interrupt(&mut self, hook: impl FnMut(SatCheckPoint) -> bool + Send + 'static) {
        self.interrupt = Some(InterruptHook(Box::new(hook)));
    }

    /// Removes the interruption callback.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Installs an interruption callback for the lifetime of the
    /// returned guard. The guard dereferences to the solver, so governed
    /// code drives its budgeted solves through it; when the guard drops
    /// — on *every* exit path, including early `?` returns and panics —
    /// the hook is removed again and plain [`Solver::solve`] /
    /// [`Solver::solve_with_assumptions`] become safe once more. Every
    /// governed call path should prefer this over a bare
    /// [`Solver::set_interrupt`], which is easy to leave installed.
    pub fn with_interrupt(
        &mut self,
        hook: impl FnMut(SatCheckPoint) -> bool + Send + 'static,
    ) -> InterruptGuard<'_> {
        self.set_interrupt(hook);
        InterruptGuard { solver: self }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of attached clauses (problem + live learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of live learnt clauses.
    pub fn num_learnt(&self) -> usize {
        self.live_learnt
    }

    /// Enables or disables learnt-clause database reduction (on by
    /// default). With reduction off the learnt database grows without
    /// bound, exactly like the pre-LBD solver.
    pub fn set_reduce_db(&mut self, enabled: bool) {
        self.reduce_enabled = enabled;
    }

    /// Sets the reduction schedule: the first reduction fires when
    /// `first` learnt clauses are live, and the threshold grows by `inc`
    /// after each reduction (defaults: 2000 / 300).
    pub fn set_reduce_policy(&mut self, first: usize, inc: usize) {
        self.next_reduce = first;
        self.reduce_inc = inc;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_var();
        self.order.insert(v.0, &self.activity);
        v
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var().index()].map(|b| b ^ l.is_neg())
    }

    /// Model value of `v` after a SAT answer (`None` if unassigned — the
    /// variable was irrelevant).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index()]
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable.
    ///
    /// Duplicate literals are removed and tautological clauses (both `l`
    /// and `¬l` present) are dropped before anything is attached, so a
    /// degenerate input never costs watch-list traversals later.
    ///
    /// # Panics
    ///
    /// Panics if called after a solve left decisions on the trail (the
    /// solver always backtracks fully, so this only guards misuse) or if
    /// a literal mentions an undeclared variable.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert!(self.trail_lim.is_empty(), "clauses must be added at decision level 0");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            assert!(l.var().index() < self.num_vars(), "undeclared variable {l}");
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology: after sort+dedup the two phases of a variable are
        // adjacent, so one linear sweep finds `l` next to `¬l`.
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // always satisfied, never attach
        }
        // Level-0 simplification against the current assignment.
        let mut simplified = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied
                Some(false) => {}          // drop falsified literal
                None => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(simplified, false, 0);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        self.watches[(!lits[0]).code()].push(cref);
        self.watches[(!lits[1]).code()].push(cref);
        self.clauses.push(Clause { lits, lbd, activity: 0.0, learnt });
        cref
    }

    fn enqueue(&mut self, l: Lit, from: Option<ClauseRef>) -> bool {
        match self.lit_value(l) {
            Some(b) => b,
            None => {
                let v = l.var().index();
                self.assigns[v] = Some(!l.is_neg());
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = from;
                self.trail.push(l);
                if from.is_some() {
                    self.stats.propagations += 1;
                }
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause if any.
    ///
    /// Maintains the reason invariant downstream analysis relies on: a
    /// propagated clause has its implied literal at position 0.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ¬p must find a new watch or propagate.
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let cref = watchers[i];
                {
                    let lits = &mut self.clauses[cref as usize].lits;
                    // Normalize: watched literals are lits[0], lits[1];
                    // the falsified one goes to position 1.
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], !p);
                }
                let first = self.clauses[cref as usize].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue; // clause satisfied, keep watching
                }
                // Look for a new literal to watch.
                let mut new_watch = None;
                {
                    let lits = &self.clauses[cref as usize].lits;
                    for (k, &l) in lits.iter().enumerate().skip(2) {
                        if self.lit_value(l) != Some(false) {
                            new_watch = Some(k);
                            break;
                        }
                    }
                }
                if let Some(k) = new_watch {
                    let lits = &mut self.clauses[cref as usize].lits;
                    lits.swap(1, k);
                    let w = !lits[1];
                    self.watches[w.code()].push(cref);
                    watchers.swap_remove(i);
                    continue; // do not advance i: swapped a new element in
                }
                // No new watch: clause is unit or conflicting.
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore remaining watchers and bail.
                    self.watches[p.code()].append(&mut watchers);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            // Non-removed watchers keep watching ¬p.
            let existing = std::mem::take(&mut self.watches[p.code()]);
            watchers.extend(existing);
            self.watches[p.code()] = watchers;
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for &l in &self.trail[lim..] {
            let v = l.var().index();
            // Phase saving: remember the assignment being undone so the
            // next decision on this variable retries it.
            self.polarity[v] = self.assigns[v].expect("trail literals are assigned");
            self.assigns[v] = None;
            self.reason[v] = None;
            self.order.insert(l.var().0, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            // Rescaling multiplies every score by the same constant, so
            // the relative order — and hence the heap — is unaffected.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v.0, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.clauses[cref as usize].learnt {
            return;
        }
        self.clauses[cref as usize].activity += self.cla_inc;
        if self.clauses[cref as usize].activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Glue of a clause: distinct decision levels among its literals.
    fn lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> =
            lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// First-UIP conflict analysis: returns the learnt clause (asserting
    /// literal first, recursively minimized), the backjump level, and the
    /// clause's glue (LBD).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        debug_assert!(self.to_clear.is_empty());
        loop {
            self.bump_clause(cref);
            // Reason clauses carry their implied literal (= the resolved
            // pivot `p`) at position 0; skip it.
            let skip = usize::from(p.is_some());
            debug_assert!(p.is_none() || self.clauses[cref as usize].lits[0] == p.unwrap());
            for k in skip..self.clauses[cref as usize].lits.len() {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.to_clear.push(q);
                    self.bump(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal at the current level to resolve.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            cref = self.reason[lit.var().index()].expect("non-decision has a reason");
            p = Some(lit);
        }

        // Recursive minimization (MiniSat's `litRedundant`): drop every
        // literal whose falsification is already implied by the rest of
        // the clause through the reason graph. `seen` is still set for
        // the kept literals, which is exactly the mark the check needs.
        let mut abstract_levels = 0u64;
        for &l in &learnt[1..] {
            abstract_levels |= 1u64 << (self.level[l.var().index()] & 63);
        }
        let mut kept = 1usize;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let redundant = self.reason[l.var().index()].is_some()
                && self.lit_redundant(l, abstract_levels);
            if !redundant {
                learnt[kept] = l;
                kept += 1;
            }
        }
        self.stats.minimized_literals += (learnt.len() - kept) as u64;
        learnt.truncate(kept);

        let lbd = self.lbd(&learnt);
        // Backjump level = highest level among the non-UIP literals.
        let mut bt = 0u32;
        let mut second = 1usize;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                second = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, second);
        }
        for l in self.to_clear.drain(..) {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt, lbd)
    }

    /// Is `p` implied by the other literals of the clause being learnt?
    /// Walks `p`'s reason graph; every antecedent must itself be seen (a
    /// clause literal or already proven redundant) or recursively
    /// redundant, and must stay within the decision levels of the clause
    /// (`abstract_levels` — a cheap 64-bit level-set approximation).
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u64) -> bool {
        let mut stack = vec![p];
        let top = self.to_clear.len();
        while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()].expect("only propagated literals");
            for k in 1..self.clauses[cref as usize].lits.len() {
                let l = self.clauses[cref as usize].lits[k];
                let v = l.var().index();
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                if self.reason[v].is_some()
                    && (1u64 << (self.level[v] & 63)) & abstract_levels != 0
                {
                    // Plausibly redundant too: recurse, and mark so a
                    // second visit is free.
                    self.seen[v] = true;
                    self.to_clear.push(l);
                    stack.push(l);
                } else {
                    // A decision or an out-of-clause level: not redundant.
                    // Unwind the marks this check added.
                    for &x in &self.to_clear[top..] {
                        self.seen[x.var().index()] = false;
                    }
                    self.to_clear.truncate(top);
                    return false;
                }
            }
        }
        true
    }

    /// Collects the assumption literals underlying the falsification of
    /// `lit` (MiniSat's `analyzeFinal`): walks the reason graph down to
    /// decision literals, which during assumption handling are exactly
    /// the assumptions.
    fn analyze_final(&mut self, lit: Lit, assumptions: &[Lit]) -> Vec<Lit> {
        let mut core = Vec::new();
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[lit.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let t = self.trail[i];
            let v = t.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision — under assumption handling, an assumption.
                    if let Some(&a) = assumptions.iter().find(|&&a| a.var() == v) {
                        core.push(a);
                    }
                }
                Some(cref) => {
                    let lits = self.clauses[cref as usize].lits.clone();
                    for q in lits {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[lit.var().index()] = false;
        for s in &mut self.seen {
            *s = false;
        }
        core
    }

    /// Next branching decision: the unassigned variable with the highest
    /// VSIDS activity, popped off the order heap in O(log n). Variables
    /// that were assigned by propagation since their insertion are
    /// discarded lazily; [`Solver::backtrack_to`] reinserts everything it
    /// unassigns, so every unassigned variable is always in the heap.
    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v as usize].is_none() {
                return Some(Lit::with_phase(Var(v), self.polarity[v as usize]));
            }
        }
        None
    }

    /// Is this clause the reason of its first literal's assignment?
    /// Locked clauses must survive database reduction.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.lit_value(first) == Some(true)
            && self.reason[first.var().index()] == Some(cref)
    }

    /// Deletes the less useful half of the deletable learnt clauses and
    /// compacts the clause arena.
    ///
    /// Protected from deletion: problem clauses, binary clauses, glue
    /// clauses (`lbd <= GLUE_LBD`), and locked clauses (currently the
    /// reason of an assignment). The rest are ranked worst-first by
    /// (higher LBD, lower activity) and the worst half is dropped.
    /// Compaction rebuilds the watch lists from the surviving clauses'
    /// first two literals — exactly the positions `propagate` maintains —
    /// and remaps the `reason` table, so it is safe at any decision level.
    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        let mut deletable: Vec<ClauseRef> = (0..self.clauses.len() as ClauseRef)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && c.lbd > GLUE_LBD && c.lits.len() > 2 && !self.is_locked(i)
            })
            .collect();
        deletable.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd.cmp(&ca.lbd).then(ca.activity.total_cmp(&cb.activity))
        });
        let mut delete = vec![false; self.clauses.len()];
        for &c in &deletable[..deletable.len() / 2] {
            delete[c as usize] = true;
        }
        let mut remap: Vec<ClauseRef> = vec![ClauseRef::MAX; self.clauses.len()];
        let old = std::mem::take(&mut self.clauses);
        for (i, c) in old.into_iter().enumerate() {
            if delete[i] {
                self.stats.deleted_clauses += 1;
                self.live_learnt -= 1;
            } else {
                remap[i] = self.clauses.len() as ClauseRef;
                self.clauses.push(c);
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            let (w0, w1) = {
                let lits = &self.clauses[i].lits;
                (!lits[0], !lits[1])
            };
            self.watches[w0.code()].push(i as ClauseRef);
            self.watches[w1.code()].push(i as ClauseRef);
        }
        for r in self.reason.iter_mut().flatten() {
            debug_assert_ne!(remap[*r as usize], ClauseRef::MAX, "reason clause deleted");
            *r = remap[*r as usize];
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are enqueued like decisions, so the solver backtracks
    /// to level 0 afterwards and **every clause learnt during the call
    /// persists into the next one** — learnt clauses are implied by the
    /// problem clauses alone, never by the assumptions. Incremental
    /// users (the netlist SAT sweep, the bounded equivalence checker)
    /// rely on this: successive queries over one solver get
    /// monotonically cheaper as the learnt database warms up. Compare
    /// [`Solver::num_learnt`] across calls, or snapshot
    /// [`Solver::stats`] and use [`SolverStats::delta_since`] for
    /// per-call effort.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        match self.search(assumptions, None) {
            BudgetedSolveResult::Sat => SolveResult::Sat,
            BudgetedSolveResult::Unsat { core } => SolveResult::Unsat { core },
            BudgetedSolveResult::Unknown => {
                // Reachable only when an interrupt hook fired mid-search;
                // a complete solve has no honest verdict to give then.
                panic!("unbudgeted solve interrupted: use solve_budgeted* with an interrupt hook")
            }
        }
    }

    /// Solves with at most `max_conflicts` conflicts; returns
    /// [`BudgetedSolveResult::Unknown`] if the budget runs out first.
    /// The solver stays usable after an `Unknown` — clauses learnt
    /// during the bounded run are kept for the next attempt.
    pub fn solve_budgeted(&mut self, max_conflicts: u64) -> BudgetedSolveResult {
        self.search(&[], Some(max_conflicts))
    }

    /// Budgeted solving under assumption literals; see
    /// [`Solver::solve_budgeted`].
    pub fn solve_budgeted_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> BudgetedSolveResult {
        self.search(assumptions, Some(max_conflicts))
    }

    /// [`Solver::solve_budgeted`] with the ladder's retry rung: an
    /// `Unknown` gets exactly one more attempt at *half* the conflict
    /// budget. The clause database is warm from the first attempt —
    /// everything learnt is kept — so the cheaper retry regularly
    /// finishes problems the cold run could not; `stats.retries` counts
    /// the retries taken.
    pub fn solve_budgeted_with_retry(&mut self, max_conflicts: u64) -> BudgetedSolveResult {
        self.solve_budgeted_with_assumptions_retry(&[], max_conflicts)
    }

    /// Assumption-literal variant of [`Solver::solve_budgeted_with_retry`].
    pub fn solve_budgeted_with_assumptions_retry(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> BudgetedSolveResult {
        match self.solve_budgeted_with_assumptions(assumptions, max_conflicts) {
            BudgetedSolveResult::Unknown => {
                self.stats.retries += 1;
                self.solve_budgeted_with_assumptions(assumptions, (max_conflicts / 2).max(1))
            }
            verdict => verdict,
        }
    }

    /// Consults the interrupt hook (if any) at a safe point.
    fn interrupt_fired(&mut self, point: SatCheckPoint) -> bool {
        match self.interrupt.as_mut() {
            Some(hook) => (hook.0)(point),
            None => false,
        }
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
    ) -> BudgetedSolveResult {
        self.backtrack_to(0);
        if !self.ok {
            return BudgetedSolveResult::Unsat { core: Vec::new() };
        }
        if let Some(_c) = self.propagate() {
            self.ok = false;
            return BudgetedSolveResult::Unsat { core: Vec::new() };
        }
        // Enqueue assumptions, each on its own decision level.
        for &a in assumptions {
            match self.lit_value(a) {
                Some(true) => {
                    self.new_decision_level();
                }
                Some(false) => {
                    let core = self.analyze_final(!a, assumptions);
                    let mut core = core;
                    core.push(a);
                    core.sort_unstable();
                    core.dedup();
                    self.backtrack_to(0);
                    return BudgetedSolveResult::Unsat { core };
                }
                None => {
                    self.new_decision_level();
                    self.enqueue(a, None);
                    if let Some(conflict) = self.propagate() {
                        // Conflict directly under assumptions.
                        let lits = self.clauses[conflict as usize].lits.clone();
                        let mut core = Vec::new();
                        for l in lits {
                            core.extend(self.analyze_final(!l, assumptions));
                        }
                        for &x in assumptions {
                            if x.var() == a.var() {
                                core.push(x);
                            }
                        }
                        core.sort_unstable();
                        core.dedup();
                        self.backtrack_to(0);
                        return BudgetedSolveResult::Unsat { core };
                    }
                }
            }
        }
        let assumption_level = self.decision_level();

        // Main CDCL loop with Luby restarts.
        let mut restart_num = 0u64;
        let mut restart_limit = (luby(2.0, 0) * RESTART_BASE as f64) as u64;
        let mut conflicts_since_restart = 0u64;
        let mut remaining = max_conflicts;
        loop {
            if self.interrupt_fired(SatCheckPoint::Propagate) {
                self.backtrack_to(0);
                return BudgetedSolveResult::Unknown;
            }
            if let Some(conflict) = self.propagate() {
                if self.decision_level() <= assumption_level {
                    // Refuted under the assumptions — the verdict is
                    // complete, so it is never charged to the budget.
                    self.stats.conflicts += 1;
                    let lits = self.clauses[conflict as usize].lits.clone();
                    let mut core = Vec::new();
                    for l in lits {
                        core.extend(self.analyze_final(!l, assumptions));
                    }
                    core.sort_unstable();
                    core.dedup();
                    self.backtrack_to(0);
                    if assumptions.is_empty() {
                        self.ok = false;
                    }
                    return BudgetedSolveResult::Unsat { core };
                }
                if let Some(r) = remaining.as_mut() {
                    if *r == 0 {
                        // Budget spent: no verdict. Keep learnt clauses,
                        // drop decisions, stay reusable. The budget check
                        // precedes the conflict count, so `solve_budgeted(n)`
                        // admits exactly `n` analyzed conflicts.
                        self.backtrack_to(0);
                        return BudgetedSolveResult::Unknown;
                    }
                    *r -= 1;
                }
                self.stats.conflicts += 1;
                let (learnt, bt_level, lbd) = self.analyze(conflict);
                let bt = bt_level.max(assumption_level);
                self.backtrack_to(bt);
                let assert_lit = learnt[0];
                self.stats.learnt_clauses += 1;
                self.stats.max_lbd = self.stats.max_lbd.max(lbd);
                if learnt.len() >= 2 {
                    let cref = self.attach(learnt, true, lbd);
                    self.live_learnt += 1;
                    self.stats.max_live_learnt =
                        self.stats.max_live_learnt.max(self.live_learnt as u64);
                    self.enqueue(assert_lit, Some(cref));
                } else {
                    self.enqueue(assert_lit, None);
                }
                self.var_inc *= 1.0 / 0.95; // VSIDS decay
                self.cla_inc *= 1.0 / 0.999; // clause-activity decay
                if self.reduce_enabled && self.live_learnt >= self.next_reduce {
                    if self.interrupt_fired(SatCheckPoint::ReduceDb) {
                        self.backtrack_to(0);
                        return BudgetedSolveResult::Unknown;
                    }
                    self.reduce_db();
                    self.next_reduce += self.reduce_inc;
                }
                conflicts_since_restart += 1;
                if conflicts_since_restart >= restart_limit {
                    // Restart: keep learnt clauses, drop decisions. Phases
                    // are saved at backtrack, so search resumes in the
                    // same region of the space.
                    self.stats.restarts += 1;
                    restart_num += 1;
                    restart_limit = (luby(2.0, restart_num) * RESTART_BASE as f64) as u64;
                    conflicts_since_restart = 0;
                    self.backtrack_to(assumption_level);
                }
            } else {
                match self.pick_branch() {
                    None => return BudgetedSolveResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …) scaled by `y^k`:
/// `luby(2, i)` is the i-th restart length in units of [`RESTART_BASE`].
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0i32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.powi(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32], vars: &[Var]) -> Vec<Lit> {
        spec.iter()
            .map(|&i| {
                let v = vars[(i.unsigned_abs() - 1) as usize];
                if i > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect()
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(lits(&[1], &vars));
        s.add_clause(lits(&[-1, 2], &vars));
        s.add_clause(lits(&[-2, 3], &vars));
        s.add_clause(lits(&[-3, 4], &vars));
        assert!(s.solve().is_sat());
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        assert!(!s.add_clause([Lit::neg(v)]));
        assert!(!s.solve().is_sat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D pigeon/hole grid
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Each pigeon somewhere; no two
        // pigeons share a hole.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..3).map(|_| (0..2).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause([Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn learnt_clauses_persist_across_assumption_solves() {
        // A pigeonhole core (4 pigeons, 3 holes) reachable only under an
        // enabling assumption: the formula itself stays satisfiable, so
        // everything learnt while refuting the assumption is implied by
        // the problem clauses and must survive into later calls.
        let mut s = Solver::new();
        let en = s.new_var();
        let p: Vec<Vec<Var>> =
            (0..4).map(|_| (0..3).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let mut c = vec![Lit::neg(en)];
            c.extend(row.iter().map(|&v| Lit::pos(v)));
            s.add_clause(c);
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in p.iter().skip(i1 + 1) {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause([Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        let before_first = s.stats;
        assert!(matches!(
            s.solve_with_assumptions(&[Lit::pos(en)]),
            SolveResult::Unsat { .. }
        ));
        let first = s.stats.delta_since(&before_first);
        assert!(first.conflicts > 0, "refutation must take real work: {first:?}");
        assert!(
            s.num_learnt() > 0,
            "learnt clauses must persist after backtracking to level 0"
        );
        let learnt_after_first = s.num_learnt();

        // Same query on the warm database: the persisted clauses prune
        // the search, so the per-call delta shrinks strictly.
        let before_second = s.stats;
        assert!(matches!(
            s.solve_with_assumptions(&[Lit::pos(en)]),
            SolveResult::Unsat { .. }
        ));
        let second = s.stats.delta_since(&before_second);
        assert!(
            second.conflicts < first.conflicts,
            "warm re-solve must be cheaper: {} vs {} conflicts",
            second.conflicts,
            first.conflicts
        );
        assert!(
            s.num_learnt() >= learnt_after_first,
            "the warm database is never discarded between calls"
        );

        // The assumption was never added as a clause: without it the
        // formula is satisfiable, learnt clauses and all.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn stats_delta_since_subtracts_counters_and_keeps_high_water_marks() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(lits(&[1, 2], &vars));
        s.add_clause(lits(&[-1, -2], &vars));
        s.add_clause(lits(&[2, 3], &vars));
        let baseline = s.stats;
        assert!(s.solve().is_sat());
        let delta = s.stats.delta_since(&baseline);
        assert_eq!(delta.conflicts, s.stats.conflicts - baseline.conflicts);
        assert_eq!(delta.max_lbd, s.stats.max_lbd, "marks carry, not subtract");
        let zero = s.stats.delta_since(&s.stats.clone());
        assert_eq!(zero.conflicts, 0);
        assert_eq!(zero.propagations, 0);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 = 1 → x2 = 0, x3 = 1.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        // x1 ⊕ x2: (x1∨x2)(¬x1∨¬x2)
        s.add_clause(lits(&[1, 2], &vars));
        s.add_clause(lits(&[-1, -2], &vars));
        s.add_clause(lits(&[2, 3], &vars));
        s.add_clause(lits(&[-2, -3], &vars));
        s.add_clause(lits(&[1], &vars));
        assert!(s.solve().is_sat());
        assert_eq!(s.value(vars[0]), Some(true));
        assert_eq!(s.value(vars[1]), Some(false));
        assert_eq!(s.value(vars[2]), Some(true));
    }

    #[test]
    fn assumptions_and_core() {
        // (a ∨ b), (¬a ∨ c), (¬b ∨ c): assuming ¬c forces ¬a, ¬b → conflict.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::pos(c)]);
        s.add_clause([Lit::neg(b), Lit::pos(c)]);
        // Satisfiable outright.
        assert!(s.solve().is_sat());
        // Unsat under ¬c, and the core mentions ¬c.
        match s.solve_with_assumptions(&[Lit::neg(c)]) {
            SolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::neg(c)), "core {core:?}");
            }
            SolveResult::Sat => panic!("must be unsat under ¬c"),
        }
        // Solver remains usable and satisfiable afterwards.
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[Lit::pos(c)]).is_sat());
    }

    #[test]
    fn core_is_subset_of_assumptions() {
        // Independent constraint islands: only the island actually
        // falsified shows in the core.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.add_clause([Lit::pos(x)]);
        match s.solve_with_assumptions(&[Lit::pos(y), Lit::neg(x), Lit::pos(z)]) {
            SolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::neg(x)));
                assert!(!core.contains(&Lit::pos(y)), "y is irrelevant: {core:?}");
                assert!(!core.contains(&Lit::pos(z)), "z is irrelevant: {core:?}");
            }
            SolveResult::Sat => panic!("must be unsat"),
        }
    }

    #[test]
    fn tautologies_ignored() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([Lit::pos(v), Lit::neg(v)]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn tautologies_and_duplicates_never_attach() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let before = s.num_clauses();
        // Tautology hidden between other literals: must not attach.
        assert!(s.add_clause([Lit::pos(a), Lit::pos(b), Lit::neg(a), Lit::pos(c)]));
        assert_eq!(s.num_clauses(), before, "tautology was attached");
        // Duplicates collapse: (b ∨ b ∨ c) attaches as the 2-literal
        // clause, whose watches cover every literal.
        assert!(s.add_clause([Lit::pos(b), Lit::pos(b), Lit::pos(c)]));
        assert_eq!(s.num_clauses(), before + 1);
        // Degenerate duplicate unit: (c ∨ c) must behave as the unit c.
        assert!(s.add_clause([Lit::pos(c), Lit::pos(c)]));
        assert_eq!(s.value(c), Some(true), "duplicate unit must propagate");
        assert!(s.solve().is_sat());
    }

    /// Pigeonhole instance `n+1` pigeons into `n` holes — unsatisfiable
    /// and exponentially hard for resolution, so a small conflict
    /// budget is guaranteed to run out on a large enough `n`.
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D pigeon/hole grid
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..n + 1).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in p.iter().skip(i1 + 1) {
                for (&v1, &v2) in row1.iter().zip(row2.iter()) {
                    s.add_clause([Lit::neg(v1), Lit::neg(v2)]);
                }
            }
        }
        s
    }

    #[test]
    fn budgeted_solve_returns_unknown_then_finishes() {
        let mut s = pigeonhole(7);
        let before = s.stats.conflicts;
        assert!(s.solve_budgeted(10).is_unknown());
        assert!(s.stats.conflicts > before, "the bounded run did search");
        // The solver is still usable: the unlimited run finishes the job.
        assert!(!s.solve().is_sat());
        // And a budgeted run on an already-refuted formula is immediate.
        assert_eq!(s.solve_budgeted(0), BudgetedSolveResult::Unsat { core: Vec::new() });
    }

    #[test]
    fn conflict_budget_admits_exactly_n_conflicts() {
        // Regression for the historical off-by-one where `solve_budgeted(n)`
        // analyzed n+1 conflicts and over-reported by one.
        let mut s = pigeonhole(7);
        assert!(s.solve_budgeted(10).is_unknown());
        assert_eq!(s.stats.conflicts, 10, "budget must admit exactly n conflicts");
        // The next bounded attempt resumes cleanly and stays exact.
        assert!(s.solve_budgeted(7).is_unknown());
        assert_eq!(s.stats.conflicts, 17);
    }

    #[test]
    fn decisions_are_not_counted_as_propagations() {
        // Regression: a formula whose solve makes decisions but can never
        // propagate (no clauses relate the variables).
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1])]);
        s.add_clause([Lit::pos(vars[2]), Lit::pos(vars[3])]);
        assert!(s.solve().is_sat());
        assert!(
            s.stats.propagations <= 2,
            "at most one propagation per clause is possible, got {}",
            s.stats.propagations
        );
        assert!(s.stats.decisions >= 2, "two islands need two decisions");
    }

    #[test]
    fn budgeted_solve_agrees_on_easy_instances() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(lits(&[1, 2], &vars));
        s.add_clause(lits(&[-1, 3], &vars));
        assert!(s.solve_budgeted(1_000).is_sat());
    }

    #[test]
    fn budgeted_assumptions_keep_core_contract() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x)]);
        match s.solve_budgeted_with_assumptions(&[Lit::neg(x), Lit::pos(y)], 1_000) {
            BudgetedSolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::neg(x)));
                assert!(!core.contains(&Lit::pos(y)));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn reduce_db_bounds_live_learnt_clauses() {
        // A hard instance learns thousands of clauses; with a tight
        // reduction schedule the *live* database must stay bounded while
        // the verdict stays correct.
        let mut unbounded = pigeonhole(7);
        unbounded.set_reduce_db(false);
        assert!(!unbounded.solve().is_sat());

        let mut bounded = pigeonhole(7);
        bounded.set_reduce_policy(150, 0);
        assert!(!bounded.solve().is_sat());

        assert!(bounded.stats.deleted_clauses > 0, "reduction never fired");
        assert!(bounded.stats.db_reductions > 0);
        // Without reduction the whole learnt history stays live; with a
        // pinned threshold (inc = 0) the live set must stay a small
        // fraction of that. The cap has headroom for protected clauses
        // (glue ≤ 2, binary, locked), which reduction never deletes.
        assert!(
            unbounded.stats.max_live_learnt > 1_000,
            "php(7) should learn thousands of clauses: {}",
            unbounded.stats.max_live_learnt
        );
        assert!(
            bounded.stats.max_live_learnt <= 400,
            "live learnt DB exceeded the cap: {} (unbounded peak {})",
            bounded.stats.max_live_learnt,
            unbounded.stats.max_live_learnt
        );
        assert!(bounded.num_learnt() <= 400);
    }

    #[test]
    fn budgeted_solve_stays_reusable_across_db_reductions() {
        // PR-1 contract: `solve_budgeted` remains usable after `Unknown`,
        // including when reductions rewrote the clause arena mid-search.
        let mut s = pigeonhole(7);
        s.set_reduce_policy(100, 50);
        let mut attempts = 0;
        loop {
            attempts += 1;
            match s.solve_budgeted(1_000) {
                BudgetedSolveResult::Unsat { .. } => break,
                BudgetedSolveResult::Unknown => assert!(attempts < 100),
                BudgetedSolveResult::Sat => panic!("pigeonhole is unsat"),
            }
        }
        assert!(s.stats.db_reductions > 0, "reductions should have fired");
        assert!(attempts > 1, "php(7) must exceed a 1000-conflict budget");
    }

    #[test]
    fn learnt_clause_minimization_shrinks_clauses() {
        let mut s = pigeonhole(6);
        assert!(!s.solve().is_sat());
        assert!(
            s.stats.minimized_literals > 0,
            "recursive minimization never removed a literal"
        );
        assert!(s.stats.max_lbd >= 2);
    }

    #[test]
    fn incremental_solving_survives_reduction_and_restarts() {
        // Pigeonhole relaxed by a literal `r` added to every
        // pigeon-placement clause: under ¬r the instance is the hard
        // php(7) refutation (forcing restarts + reductions); under r it
        // is trivially satisfiable. The same solver must answer both.
        let n = 7usize;
        let mut s = Solver::new();
        let r = s.new_var();
        let p: Vec<Vec<Var>> =
            (0..n + 1).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).chain([Lit::pos(r)]));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in p.iter().skip(i1 + 1) {
                for (&v1, &v2) in row1.iter().zip(row2.iter()) {
                    s.add_clause([Lit::neg(v1), Lit::neg(v2)]);
                }
            }
        }
        s.set_reduce_policy(100, 50);
        match s.solve_with_assumptions(&[Lit::neg(r)]) {
            SolveResult::Unsat { core } => {
                assert_eq!(core, vec![Lit::neg(r)], "refutation hinges on ¬r");
            }
            SolveResult::Sat => panic!("php(7) under ¬r must be unsat"),
        }
        assert!(s.stats.restarts > 0, "php(7) needs more than one restart unit");
        assert!(s.stats.db_reductions > 0, "reductions should have fired");
        // Same solver, opposite assumption: trivially satisfiable.
        assert!(s.solve_with_assumptions(&[Lit::pos(r)]).is_sat());
        assert_eq!(s.value(r), Some(true));
        // And unconstrained: still satisfiable (r is free).
        assert!(s.solve().is_sat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(|i| luby(2.0, i) as u64).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn interrupt_hook_bails_out_and_solver_stays_usable() {
        let mut s = pigeonhole(7);
        // Fire on the 5th propagate checkpoint.
        let mut crossings = 0u64;
        s.set_interrupt(move |point| {
            if point == SatCheckPoint::Propagate {
                crossings += 1;
                crossings == 5
            } else {
                false
            }
        });
        assert!(s.solve_budgeted(u64::MAX).is_unknown());
        // Hook removed: the same solver finishes the job, reusing
        // whatever it learnt before the interruption.
        s.clear_interrupt();
        assert!(!s.solve_budgeted(u64::MAX).is_unknown());
    }

    #[test]
    fn interrupt_hook_fires_at_reduce_db_checkpoint() {
        let mut s = pigeonhole(7);
        s.set_reduce_policy(50, 25);
        s.set_interrupt(|point| point == SatCheckPoint::ReduceDb);
        assert!(s.solve_budgeted(u64::MAX).is_unknown());
        assert_eq!(s.stats.db_reductions, 0, "the bail-out preempts the reduction");
    }

    #[test]
    fn budgeted_retry_counts_and_runs_warm() {
        let mut s = pigeonhole(6);
        // A 1-conflict budget cannot refute php(6); the retry (at half
        // budget, floored to 1) is also hopeless — but both attempts are
        // counted and the solver survives.
        assert!(s.solve_budgeted_with_retry(1).is_unknown());
        assert_eq!(s.stats.retries, 1);
        // Generous budget: verdict on the first attempt, no new retry.
        assert!(!s.solve_budgeted_with_retry(u64::MAX).is_unknown());
        assert_eq!(s.stats.retries, 1);
    }

    #[test]
    #[should_panic(expected = "unbudgeted solve interrupted")]
    fn unbudgeted_solve_rejects_interruption() {
        let mut s = pigeonhole(5);
        s.set_interrupt(|_| true);
        let _ = s.solve();
    }

    #[test]
    fn stats_absorb_accumulates_retries() {
        let mut a = SolverStats { retries: 2, ..SolverStats::default() };
        let b = SolverStats { retries: 3, ..SolverStats::default() };
        a.absorb(&b);
        assert_eq!(a.retries, 5);
    }

    #[test]
    fn interrupt_guard_clears_hook_after_interrupted_check() {
        // Regression: a governed check installs a hook, gets interrupted,
        // and returns early. Before the RAII guard the hook survived into
        // the next plain `solve()` and tripped the complete-search panic.
        let mut s = pigeonhole(5);
        {
            let mut guarded = s.with_interrupt(|_| true);
            assert!(guarded.solve_budgeted(u64::MAX).is_unknown());
        } // guard drops here, clearing the hook
        assert!(!s.solve().is_sat(), "plain solve after a governed check must not panic");
    }

    #[test]
    fn interrupt_guard_clears_hook_on_early_exit() {
        // The guard must clear the hook even when the governed scope
        // bails before any solve happens (the `?`-return shape).
        fn governed_scope(s: &mut Solver) -> Result<(), ()> {
            let _guarded = s.with_interrupt(|_| true);
            Err(()) // governor tripped before the solve
        }
        let mut s = pigeonhole(4);
        assert!(governed_scope(&mut s).is_err());
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn duplicate_assumptions_are_harmless_and_core_is_deduped() {
        // (x), assume [¬x, ¬x]: the first copy conflicts; the core must
        // name ¬x exactly once. The satisfiable side: assume [y, y] on a
        // free variable must answer Sat with y assigned.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x)]);
        match s.solve_with_assumptions(&[Lit::neg(x), Lit::neg(x)]) {
            SolveResult::Unsat { core } => {
                assert_eq!(core, vec![Lit::neg(x)], "deduplicated, minimal core");
            }
            other => panic!("expected unsat, got {other:?}"),
        }
        assert!(s.solve_with_assumptions(&[Lit::pos(y), Lit::pos(y)]).is_sat());
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn contradictory_assumptions_yield_the_two_literal_core() {
        // Assume [y, ¬y] on a variable the formula does not constrain:
        // the contradiction lives entirely in the assumptions, and the
        // core must be exactly {y, ¬y} — not the whole assumption list.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.add_clause([Lit::pos(x), Lit::pos(z)]);
        match s.solve_with_assumptions(&[Lit::pos(z), Lit::pos(y), Lit::neg(y)]) {
            SolveResult::Unsat { core } => {
                let mut want = vec![Lit::pos(y), Lit::neg(y)];
                want.sort_unstable();
                assert_eq!(core, want, "z is irrelevant to the contradiction");
            }
            other => panic!("expected unsat, got {other:?}"),
        }
        // Order must not matter: contradiction first, then the rest.
        match s.solve_with_assumptions(&[Lit::neg(y), Lit::pos(y), Lit::pos(z)]) {
            SolveResult::Unsat { core } => {
                let mut want = vec![Lit::pos(y), Lit::neg(y)];
                want.sort_unstable();
                assert_eq!(core, want);
            }
            other => panic!("expected unsat, got {other:?}"),
        }
        // And the solver is reusable afterwards.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn contradiction_through_propagation_keeps_core_relevant() {
        // (¬a ∨ b), assume [a, ¬b, c]: a propagates b, ¬b contradicts.
        // Core = {a, ¬b}; the free assumption c must stay out.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([Lit::neg(a), Lit::pos(b)]);
        match s.solve_with_assumptions(&[Lit::pos(a), Lit::neg(b), Lit::pos(c)]) {
            SolveResult::Unsat { core } => {
                assert!(core.contains(&Lit::pos(a)));
                assert!(core.contains(&Lit::neg(b)));
                assert!(!core.contains(&Lit::pos(c)), "c is not part of the refutation");
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }
}
