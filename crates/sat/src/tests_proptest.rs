//! Property-based tests: solver verdicts and UNSAT-core soundness
//! against brute-force enumeration on random CNFs with ≤ 12 variables,
//! exercised both with and without learnt-database reduction.

use crate::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// A clause literal as (variable index, positive phase).
type RawClause = Vec<(usize, bool)>;

#[derive(Debug, Clone)]
struct Cnf {
    num_vars: usize,
    clauses: Vec<RawClause>,
}

/// Random CNFs: 2–12 variables, clause count up to 5× the variable
/// count (straddling the SAT/UNSAT transition), clauses of 1–4 literals
/// drawn with replacement (so duplicates and tautologies occur too).
struct CnfStrategy;

impl Strategy for CnfStrategy {
    type Value = Cnf;

    fn generate(&self, rng: &mut TestRng) -> Cnf {
        let num_vars = 2 + (rng.next_u64() % 11) as usize;
        let num_clauses = 1 + (rng.next_u64() as usize % (num_vars * 5));
        let clauses = (0..num_clauses)
            .map(|_| {
                let len = 1 + (rng.next_u64() % 4) as usize;
                (0..len)
                    .map(|_| {
                        (
                            (rng.next_u64() % num_vars as u64) as usize,
                            rng.next_u64() & 1 == 1,
                        )
                    })
                    .collect()
            })
            .collect();
        Cnf { num_vars, clauses }
    }
}

fn brute_force_sat(cnf: &Cnf) -> bool {
    brute_force_sat_under(cnf, &[])
}

fn brute_force_sat_under(cnf: &Cnf, units: &[(usize, bool)]) -> bool {
    'outer: for bits in 0u32..1 << cnf.num_vars {
        for &(v, pos) in units {
            if (bits >> v & 1 == 1) != pos {
                continue 'outer;
            }
        }
        for clause in &cnf.clauses {
            let ok = clause.iter().any(|&(v, pos)| (bits >> v & 1 == 1) == pos);
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn build_solver(cnf: &Cnf, reduce: bool) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    s.set_reduce_db(reduce);
    if reduce {
        // A tiny schedule so reduction actually fires on these small
        // instances whenever any clauses are learnt at all.
        s.set_reduce_policy(4, 0);
    }
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| s.new_var()).collect();
    for clause in &cnf.clauses {
        s.add_clause(clause.iter().map(|&(v, pos)| Lit::with_phase(vars[v], pos)));
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn verdict_matches_brute_force(cnf in CnfStrategy, reduce in any::<bool>()) {
        let expect = brute_force_sat(&cnf);
        let (mut s, vars) = build_solver(&cnf, reduce);
        let got = s.solve();
        prop_assert_eq!(got.is_sat(), expect);
        if got.is_sat() {
            // The model must satisfy every clause.
            for clause in &cnf.clauses {
                let ok = clause
                    .iter()
                    .any(|&(v, pos)| s.value(vars[v]).unwrap_or(false) == pos);
                prop_assert!(ok, "model violates clause {:?}", clause);
            }
        }
    }

    #[test]
    fn unsat_core_is_sound_under_assumptions(
        cnf in CnfStrategy,
        reduce in any::<bool>(),
        raw in (any::<u64>(), any::<u64>()),
    ) {
        // Derive up to 4 assumptions (one per variable) from raw bits.
        let mut assumptions: Vec<(usize, bool)> = Vec::new();
        for i in 0..4usize {
            let v = ((raw.0 >> (i * 8)) as usize) % cnf.num_vars;
            let pos = raw.1 >> i & 1 == 1;
            if !assumptions.iter().any(|&(w, _)| w == v) {
                assumptions.push((v, pos));
            }
        }
        let expect = brute_force_sat_under(&cnf, &assumptions);
        let (mut s, vars) = build_solver(&cnf, reduce);
        let assumption_lits: Vec<Lit> = assumptions
            .iter()
            .map(|&(v, pos)| Lit::with_phase(vars[v], pos))
            .collect();
        match s.solve_with_assumptions(&assumption_lits) {
            SolveResult::Sat => prop_assert!(expect, "solver said SAT, oracle says UNSAT"),
            SolveResult::Unsat { core } => {
                prop_assert!(!expect, "solver said UNSAT, oracle says SAT");
                // Core soundness: every core literal is an assumption…
                for l in &core {
                    prop_assert!(
                        assumption_lits.contains(l),
                        "core literal {} is not an assumption", l
                    );
                }
                // …and the core alone already makes the formula UNSAT.
                let core_units: Vec<(usize, bool)> = core
                    .iter()
                    .map(|l| {
                        let v = vars.iter().position(|&w| w == l.var()).unwrap();
                        (v, !l.is_neg())
                    })
                    .collect();
                prop_assert!(
                    !brute_force_sat_under(&cnf, &core_units),
                    "core {:?} does not refute the formula", core
                );
            }
        }
        // The solver stays reusable after the assumption query.
        prop_assert_eq!(s.solve().is_sat(), brute_force_sat(&cnf));
    }

    #[test]
    fn reduction_and_no_reduction_agree(cnf in CnfStrategy) {
        let (mut with_red, _) = build_solver(&cnf, true);
        let (mut without_red, _) = build_solver(&cnf, false);
        prop_assert_eq!(with_red.solve().is_sat(), without_red.solve().is_sat());
    }
}
