//! A small conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This is the substrate for the SAT-based bi-decomposition baseline of
//! Lee, Jiang & Hung (DAC 2008) — the approach the paper discusses as the
//! main alternative to its symbolic formulation. The solver implements
//! the standard recipe in the MiniSat/Glucose tradition \[11\]:
//!
//! - two-watched-literal unit propagation,
//! - first-UIP conflict analysis with clause learning and recursive
//!   learnt-clause minimization,
//! - VSIDS activity-driven branching through an indexed binary order
//!   heap (O(log n) per decision),
//! - an LBD (glue) scored learnt-clause database with activity decay and
//!   periodic reduction that protects glue ≤ 2 and locked clauses,
//! - non-chronological backtracking, Luby restarts, and phase saving at
//!   backtrack time,
//! - incremental solving under assumptions, with extraction of the
//!   subset of assumptions used in a refutation (the "unsat core over
//!   assumptions" that \[14\] exploits to grow variable partitions).
//!
//! # Example
//!
//! ```
//! use symbi_sat::{Lit, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

mod heap;
mod solver;

pub use solver::{
    BudgetedSolveResult, InterruptGuard, InterruptHook, Lit, SatCheckPoint, SolveResult, Solver,
    SolverStats, Var,
};

#[cfg(test)]
mod tests_dimacs_style;

#[cfg(test)]
mod tests_proptest;
