//! Property tests for latch partitioning and care-set soundness.
//!
//! Three invariants, straight from §3.5.1's contract:
//!
//! 1. every latch of the netlist appears in at least one partition,
//! 2. no partition exceeds the [`PartitionOptions::max_latches`] cap,
//!    and when the cap covers the whole design, every function's
//!    present-state support fits inside a single partition,
//! 3. the conjunction of per-partition care sets is an
//!    **over**-approximation of the reachable states — every state a
//!    random simulation actually visits must satisfy it.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use symbi_bdd::{Manager, VarId};
use symbi_netlist::sim::Simulator;
use symbi_netlist::{GateKind, Netlist, SignalId};
use symbi_reach::{partition_latches, PartitionOptions, Reachability, ReachabilityOptions};

/// Seeded random sequential netlist with at most `n_latches` latches;
/// gates only reference earlier signals, so it is acyclic.
fn random_netlist(seed: u64, n_inputs: usize, n_latches: usize, n_gates: usize) -> Netlist {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut n = Netlist::new("rnd");
    let mut pool: Vec<SignalId> =
        (0..n_inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    let latches: Vec<SignalId> =
        (0..n_latches).map(|i| n.add_latch(format!("q{i}"), rng.gen_bool(0.5))).collect();
    pool.extend(&latches);
    for g in 0..n_gates {
        let kind = match rng.gen_range(0..5usize) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nor,
            _ => GateKind::Not,
        };
        let arity = if kind.is_unary() { 1 } else { 2 };
        let fanins: Vec<SignalId> =
            (0..arity).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        pool.push(n.add_gate(format!("g{g}"), kind, fanins));
    }
    for &q in &latches {
        n.set_latch_next(q, pool[rng.gen_range(0..pool.len())]);
    }
    n.add_output("o", pool[pool.len() - 1]);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitions_cover_every_latch_and_respect_the_cap(
        seed in any::<u64>(),
        n_inputs in 1usize..4,
        n_latches in 1usize..10,
        n_gates in 2usize..20,
        cap in 1usize..12,
    ) {
        let n = random_netlist(seed, n_inputs, n_latches, n_gates);
        let parts = partition_latches(&n, PartitionOptions { max_latches: cap });
        // Size bound: unconditional.
        for p in &parts {
            prop_assert!(
                p.latches.len() <= cap,
                "partition of {} latches exceeds cap {cap}",
                p.latches.len()
            );
            // Sorted by id, no duplicates.
            prop_assert!(p.latches.windows(2).all(|w| w[0] < w[1]));
            // Only real latches.
            for &l in &p.latches {
                prop_assert!(n.latches().contains(&l));
            }
        }
        // Coverage: every latch appears somewhere.
        for &l in n.latches() {
            prop_assert!(
                parts.iter().any(|p| p.latches.contains(&l)),
                "latch {l} not covered by any partition"
            );
        }
    }

    #[test]
    fn uncapped_partitions_cover_every_ps_support(
        seed in any::<u64>(),
        n_latches in 1usize..8,
        n_gates in 2usize..16,
    ) {
        let n = random_netlist(seed, 2, n_latches, n_gates);
        // Cap ≥ latch count: nothing is ever truncated, so each
        // function's present-state support must sit whole in one
        // partition.
        let parts = partition_latches(&n, PartitionOptions { max_latches: n_latches });
        for &l in n.latches() {
            let supp = n.support_ps(n.latch_next(l).expect("validated"));
            prop_assert!(
                parts.iter().any(|p| p.covers(&supp)),
                "no partition covers supp_ps of latch {l}: {supp:?}"
            );
        }
        for &(_, out) in n.outputs() {
            let supp = n.support_ps(out);
            if !supp.is_empty() {
                prop_assert!(parts.iter().any(|p| p.covers(&supp)));
            }
        }
    }

    #[test]
    fn care_set_over_approximates_simulated_states(
        seed in any::<u64>(),
        n_inputs in 1usize..4,
        n_latches in 1usize..10,
        n_gates in 2usize..20,
        cap in 1usize..6,
    ) {
        let n = random_netlist(seed, n_inputs, n_latches, n_gates);
        let opts = ReachabilityOptions {
            partition: PartitionOptions { max_latches: cap },
            ..Default::default()
        };
        let mut reach = Reachability::analyze(&n, opts);
        let latches: Vec<SignalId> = n.latches().to_vec();
        let mut dst = Manager::with_vars(latches.len());
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let care = reach.care_set(&latches, &mut dst, &var_of);
        // Drive the circuit with seeded random inputs; every visited
        // state must be inside the care set.
        let mut sim = Simulator::new(&n);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
        for step in 0..32 {
            let state: Vec<bool> = sim.state().iter().map(|&w| w & 1 == 1).collect();
            prop_assert!(
                dst.eval(care, &state),
                "simulated state {state:?} at step {step} escaped the care set"
            );
            let inputs: Vec<u64> =
                (0..n.num_inputs()).map(|_| if rng.gen_bool(0.5) { 1 } else { 0 }).collect();
            sim.step(&inputs);
        }
    }

    #[test]
    fn clustered_and_per_bit_schedules_reach_the_same_sets(
        seed in any::<u64>(),
        n_inputs in 1usize..4,
        n_latches in 1usize..10,
        n_gates in 2usize..20,
        cap in 1usize..7,
        cluster_limit in 1usize..200,
    ) {
        // Small caps matter: they produce partitions whose transition
        // relations read *free* external latches, the configuration
        // where scheduling bugs hide. The clustered engine (any limit)
        // must compute exactly the per-bit fixpoints.
        let n = random_netlist(seed, n_inputs, n_latches, n_gates);
        let base = ReachabilityOptions {
            partition: PartitionOptions { max_latches: cap },
            ..Default::default()
        };
        let per_bit =
            Reachability::analyze(&n, ReachabilityOptions { cluster_limit: 0, ..base });
        let clustered =
            Reachability::analyze(&n, ReachabilityOptions { cluster_limit, ..base });
        prop_assert!(
            clustered.same_reached_sets(&per_bit),
            "cluster_limit={cluster_limit} cap={cap} reached different sets"
        );
        prop_assert_eq!(per_bit.log2_states(), clustered.log2_states());
    }
}
