//! Partitioned forward reachability analysis and unreachable-state
//! don't-care extraction (§3.5.1 of Kravets & Mishchenko, DATE 2009).
//!
//! The paper performs "state-space exploration with forward reachability
//! analysis for overlapping subsets of registers", selected by structural
//! dependence so that the present-state support of each function of
//! interest lands in at least one partition. Latches outside a partition
//! are treated as free inputs during image computation, which makes each
//! per-partition reachable set an **over-approximation** of the true
//! projection — and therefore its complement a sound under-approximation
//! of the unreachable states, safe to use as don't cares.
//!
//! Entry points:
//!
//! - [`partition_latches`]: the overlapping partition heuristic,
//! - [`Reachability::analyze`]: fixed-point image computation per
//!   partition, each in its own BDD manager ("node space"),
//! - [`Reachability::care_set`]: projects and conjoins the partition
//!   results over a signal's present-state support, transferring them into
//!   the caller's manager (the "common node space" of §3.5.3).

mod partition;
mod reach;

pub use partition::{partition_latches, Partition, PartitionOptions};
pub use reach::{ReachStats, Reachability, ReachabilityOptions};

/// The clustered image-computation engine (re-exported from
/// [`symbi_bdd::image`], where it lives so that non-reach consumers —
/// e.g. sequential equivalence checking — can share it).
pub mod image {
    pub use symbi_bdd::image::{ImageEngine, ImageStats, DEFAULT_CLUSTER_LIMIT};
}

#[cfg(test)]
mod tests_integration;
