//! BDD forward reachability per latch partition, and don't-care retrieval.

use crate::partition::{partition_latches, Partition, PartitionOptions};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use symbi_bdd::hash::FxHashMap;
use symbi_bdd::image::{ImageEngine, ImageStats, DEFAULT_CLUSTER_LIMIT};
use symbi_bdd::par::parallel_map;
use symbi_bdd::{
    FaultSite, KernelConfig, Manager, NodeId, ResourceExhausted, ResourceGovernor, VarId,
};
use symbi_netlist::cone::ConeExtractor;
use symbi_netlist::{Netlist, SignalId};

/// Tuning knobs for [`Reachability::analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityOptions {
    /// Partitioning configuration.
    pub partition: PartitionOptions,
    /// Cap on fixed-point iterations per partition; on hitting it the
    /// partition conservatively reports every state reachable.
    pub max_iterations: usize,
    /// Cap on BDD nodes per partition manager, enforced *inside* every
    /// image operation through the resource governor; same conservative
    /// fallback.
    pub node_limit: usize,
    /// Recursion-step budget per partition (`u64::MAX` = unlimited). A
    /// partition that exhausts it falls back to "everything reachable",
    /// or is split if large enough.
    pub step_budget: u64,
    /// Worker threads for the per-partition fixpoint loops; each worker
    /// owns a private [`Manager`] and results are merged in the same
    /// canonical order as the sequential analysis, so any `jobs` value
    /// produces identical partitions (under an unlimited governor; a
    /// finite *shared* step budget races between workers and can change
    /// which partition trips it first).
    pub jobs: usize,
    /// BDD kernel knobs (computed-table size, automatic garbage
    /// collection, automatic reordering) applied to every per-partition
    /// manager. [`KernelConfig::shared_workers`] at `2+` additionally
    /// runs each partition's large image/apply calls on the shared-memory
    /// concurrent kernel; canonicity keeps the fixpoints — and hence the
    /// reachable sets — identical to the single-threaded analysis.
    pub kernel: KernelConfig,
    /// Node ceiling per transition-relation cluster for the clustered
    /// image engine ([`symbi_bdd::image`]); `0` disables clustering and
    /// runs the legacy per-bit latch-order schedule. A clustered
    /// partition that trips a resource cap is retried per-bit before
    /// splitting or bailing.
    pub cluster_limit: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            partition: PartitionOptions::default(),
            max_iterations: 10_000,
            node_limit: 1_000_000,
            step_budget: u64::MAX,
            jobs: 1,
            kernel: KernelConfig::default(),
            cluster_limit: DEFAULT_CLUSTER_LIMIT,
        }
    }
}

/// Outcome statistics of an analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachStats {
    /// Number of latch partitions analyzed.
    pub partitions: usize,
    /// Total image iterations across partitions.
    pub iterations: usize,
    /// Number of partitions that hit a resource cap and fell back to
    /// "everything reachable".
    pub bailed_out: usize,
    /// `log2` of the (conjunctively approximated) reachable state count —
    /// the `log2 states` column of Table 3.1.
    pub log2_states: f64,
    /// Largest number of simultaneously live BDD nodes in any single
    /// partition's analysis manager (deterministic across `jobs` values:
    /// each partition's operation sequence is independent of scheduling).
    pub peak_live_nodes: usize,
    /// Total transition-relation clusters across partitions (equals the
    /// conjunct count when clustering is disabled or never merges).
    pub clusters: usize,
    /// Largest single cluster BDD, in nodes, across partitions.
    pub max_cluster_nodes: usize,
    /// Garbage-collection runs summed across partition managers, up to
    /// the end of each fixpoint (final compaction excluded). Like
    /// `peak_live_nodes`, deterministic across `jobs` values.
    pub gc_runs: u64,
    /// Computed-table hits summed across partition managers.
    pub cache_hits: u64,
    /// Computed-table misses summed across partition managers.
    pub cache_misses: u64,
    /// Clusters replaced by a substantially smaller
    /// `constrain(cluster, frontier)`, summed across partitions.
    pub constrain_wins: u64,
    /// Frontiers replaced by a strictly smaller
    /// `restrict(frontier, ¬reached)`, summed across partitions.
    pub restrict_wins: u64,
    /// Halved-budget retries taken by the ladder's transient-fault rung
    /// (a clustered attempt that tripped a step/node cap is retried once
    /// at half the sub-budget before degrading further).
    pub retries: u64,
    /// Cluster merges retried at half sub-budget inside the image
    /// engines, summed across partitions.
    pub merge_retries: u64,
    /// Partition analyses that panicked and were absorbed at the
    /// isolation boundary (the partition degrades to bail-to-⊤ exactly
    /// like a budget trip instead of tearing down the pool).
    pub worker_panics: u64,
}

#[derive(Debug)]
struct PartitionReach {
    latches: Vec<SignalId>,
    /// The analysis manager, garbage-collected and compacted in place
    /// after the fixpoint so only the reachable set (plus variable
    /// nodes) survives; present-state variables keep their interleaved
    /// analysis-time indices. For a bailed partition the analysis
    /// manager is **dropped** and this is left empty — the partition
    /// carries no information, so consumers must skip it rather than
    /// touch its (nonexistent) variables.
    manager: Manager,
    /// Reachable set over the partition's present-state variables;
    /// `NodeId::TRUE` when the partition bailed.
    reach: NodeId,
    /// Latch output signal → present-state variable in `manager`
    /// (empty when bailed).
    ps_var: HashMap<SignalId, VarId>,
    iterations: usize,
    bailed: bool,
    /// Peak live node count of the analysis manager (captured before a
    /// bailed partition's manager is dropped).
    peak_live: usize,
    /// Image-engine shape/counter snapshot (zero if the engine build
    /// itself tripped a cap).
    image: ImageStats,
    /// Kernel counters of the analysis manager up to the end of the
    /// fixpoint (captured before compaction or drop).
    gc_runs: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Why the analysis bailed (`None` on success), driving the
    /// ladder's retry decision: step/node trips are transient and worth
    /// one halved-budget retry, deadline/cancellation are not.
    bail_cause: Option<ResourceExhausted>,
    /// Halved-budget retries charged to this partition by the ladder.
    retries: u64,
    /// Whether the analysis panicked and was absorbed at the isolation
    /// boundary (implies `bailed`).
    worker_panic: bool,
}

/// Result of partitioned forward reachability on one netlist.
///
/// Each partition's reachable set lives in its own manager; use
/// [`Reachability::care_set`] to project and conjoin the relevant
/// partitions into your own manager.
#[derive(Debug)]
pub struct Reachability {
    parts: Vec<PartitionReach>,
    num_latches: usize,
}

impl Reachability {
    /// Runs forward reachability on every partition of `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn analyze(netlist: &Netlist, options: ReachabilityOptions) -> Self {
        Reachability::analyze_governed(netlist, options, &ResourceGovernor::unlimited())
    }

    /// [`Reachability::analyze`] under an external resource governor:
    /// each partition runs in a child governor (fresh step budget of
    /// `options.step_budget`, charged back to `gov`), so a flow-level
    /// deadline, node ceiling, or cancellation interrupts the analysis
    /// *mid-image* rather than between fixed-point iterations. An
    /// exhausted partition degrades to "everything reachable" — always
    /// sound — or is split in half first if it is large enough.
    ///
    /// With `options.jobs > 1` the top-level partitions are analyzed on
    /// a pool of worker threads, each with a private [`Manager`]; the
    /// adaptive splitting recursion stays *inside* a partition's task
    /// and results are concatenated in the sequential order, so the
    /// analysis is deterministic across `jobs` values.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn analyze_governed(
        netlist: &Netlist,
        options: ReachabilityOptions,
        gov: &ResourceGovernor,
    ) -> Self {
        netlist.validate().expect("reachability requires a valid netlist");
        let partitions = partition_latches(netlist, options.partition);
        // The historical sequential analysis popped a LIFO worklist, so
        // partitions were processed (and their splits expanded,
        // depth-first) in reverse order; preserve exactly that order so
        // parallel and sequential runs stay interchangeable.
        let roots: Vec<Partition> = partitions.into_iter().rev().collect();
        let analyzed: Vec<Vec<PartitionReach>> =
            parallel_map(options.jobs.max(1), roots, |_, p| {
                analyze_adaptive(netlist, p, &options, gov)
            });
        let parts: Vec<PartitionReach> = analyzed.into_iter().flatten().collect();
        Reachability { parts, num_latches: netlist.num_latches() }
    }

    /// A no-information analysis: every state considered reachable. Used
    /// as the "No states" arm of the paper's Table 3.1 experiment.
    pub fn trivial(netlist: &Netlist) -> Self {
        Reachability { parts: Vec::new(), num_latches: netlist.num_latches() }
    }

    /// Number of analyzed partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Builds the care set (projection of the reachable over-approximation)
    /// over the given latch support, inside `dst`. `var_of` maps each latch
    /// signal in `support` to its variable in `dst`. States outside the
    /// returned set are **unreachable** and may be used as don't cares.
    ///
    /// Latches not covered by any partition contribute no constraint.
    ///
    /// # Panics
    ///
    /// Panics if a latch in `support` is missing from `var_of`.
    pub fn care_set(
        &mut self,
        support: &[SignalId],
        dst: &mut Manager,
        var_of: &HashMap<SignalId, VarId>,
    ) -> NodeId {
        self.try_care_set(support, dst, var_of, &ResourceGovernor::unlimited()).0
    }

    /// Governed [`Reachability::care_set`]. A partition whose projection
    /// or conjunction exhausts `gov` is *skipped* — it contributes no
    /// constraint, exactly as if it had never been analyzed, so the
    /// returned set is still an over-approximation of the reachable
    /// states. Returns the care set and the number of skipped partitions.
    pub fn try_care_set(
        &mut self,
        support: &[SignalId],
        dst: &mut Manager,
        var_of: &HashMap<SignalId, VarId>,
        gov: &ResourceGovernor,
    ) -> (NodeId, usize) {
        let mut acc = NodeId::TRUE;
        let mut skipped = 0usize;
        for part in &mut self.parts {
            if part.bailed {
                // The analysis manager was dropped on the bail-to-⊤ path;
                // the partition constrains nothing.
                continue;
            }
            let in_support: Vec<SignalId> = part
                .latches
                .iter()
                .copied()
                .filter(|l| support.contains(l))
                .collect();
            if in_support.is_empty() {
                continue;
            }
            // Quantify away partition latches outside the support...
            let away: Vec<VarId> = part
                .latches
                .iter()
                .filter(|l| !support.contains(l))
                .map(|l| part.ps_var[l])
                .collect();
            // ...and transfer the projection into the caller's space.
            let var_map: FxHashMap<VarId, VarId> = in_support
                .iter()
                .map(|l| {
                    let dst_var = *var_of
                        .get(l)
                        .unwrap_or_else(|| panic!("no destination variable for latch {l}"));
                    (part.ps_var[l], dst_var)
                })
                .collect();
            let part_manager = &mut part.manager;
            let reach = part.reach;
            let conjoined = (|| -> Result<NodeId, ResourceExhausted> {
                let projected = part_manager.try_exists(reach, &away, gov)?;
                // Transfer is linear in the projection — unbudgeted.
                let transferred = dst.transfer_from(part_manager, projected, &var_map);
                dst.try_and(acc, transferred, gov)
            })();
            match conjoined {
                Ok(n) => acc = n,
                Err(_) => skipped += 1,
            }
        }
        (acc, skipped)
    }

    /// Read-only [`Reachability::try_care_set`] for concurrent callers:
    /// instead of projecting inside the partition's own manager (which
    /// needs `&mut self` for the cache), each relevant partition's full
    /// reachable set is first copied into a private scratch manager and
    /// projected there. Projection-then-transfer yields the same
    /// canonical function in `dst` as the in-place path, so the two
    /// methods return identical care sets; this one simply trades a
    /// little copying for shareability across worker threads.
    pub fn try_care_set_shared(
        &self,
        support: &[SignalId],
        dst: &mut Manager,
        var_of: &HashMap<SignalId, VarId>,
        gov: &ResourceGovernor,
    ) -> (NodeId, usize) {
        let mut acc = NodeId::TRUE;
        let mut skipped = 0usize;
        for part in &self.parts {
            if part.bailed {
                continue;
            }
            let in_support: Vec<SignalId> = part
                .latches
                .iter()
                .copied()
                .filter(|l| support.contains(l))
                .collect();
            if in_support.is_empty() {
                continue;
            }
            let away: Vec<VarId> = part
                .latches
                .iter()
                .filter(|l| !support.contains(l))
                .map(|l| part.ps_var[l])
                .collect();
            let var_map: FxHashMap<VarId, VarId> = in_support
                .iter()
                .map(|l| {
                    let dst_var = *var_of
                        .get(l)
                        .unwrap_or_else(|| panic!("no destination variable for latch {l}"));
                    (part.ps_var[l], dst_var)
                })
                .collect();
            let conjoined = (|| -> Result<NodeId, ResourceExhausted> {
                // Identity copy into a scratch manager with the same
                // variable universe, then project there.
                let mut scratch = Manager::with_vars(part.manager.num_vars());
                let identity: FxHashMap<VarId, VarId> = (0..part.manager.num_vars() as u32)
                    .map(|v| (VarId(v), VarId(v)))
                    .collect();
                let local = scratch.transfer_from(&part.manager, part.reach, &identity);
                let projected = scratch.try_exists(local, &away, gov)?;
                let transferred = dst.transfer_from(&scratch, projected, &var_map);
                dst.try_and(acc, transferred, gov)
            })();
            match conjoined {
                Ok(n) => acc = n,
                Err(_) => skipped += 1,
            }
        }
        (acc, skipped)
    }

    /// `log2` of the reachable-state count under the conjunction of all
    /// partition over-approximations (the `log2 states` of Table 3.1).
    /// With no partitions this is simply the latch count.
    ///
    /// A bailed partition's BDD was dropped on the bail-to-⊤ path, so it
    /// contributes no constraint: its latches count as full-space (a
    /// free factor of 2 each) unless some *other*, successful partition
    /// also covers them.
    pub fn log2_states(&self) -> f64 {
        if self.parts.is_empty() {
            return self.num_latches as f64;
        }
        // Global space: one variable per latch that appears in any
        // successfully analyzed partition; uncovered latches (including
        // those only in bailed partitions) contribute a free factor of 2
        // each.
        let mut global = Manager::new();
        let mut var_of: HashMap<SignalId, VarId> = HashMap::new();
        let mut covered = 0usize;
        for part in self.parts.iter().filter(|p| !p.bailed) {
            for &l in &part.latches {
                var_of.entry(l).or_insert_with(|| {
                    covered += 1;
                    let v = VarId(global.num_vars() as u32);
                    global.new_var();
                    v
                });
            }
        }
        let mut acc = NodeId::TRUE;
        for part in self.parts.iter().filter(|p| !p.bailed) {
            let var_map: FxHashMap<VarId, VarId> =
                part.latches.iter().map(|l| (part.ps_var[l], var_of[l])).collect();
            let t = global.transfer_from(&part.manager, part.reach, &var_map);
            acc = global.and(acc, t);
        }
        let frac = global.sat_fraction(acc);
        let uncovered = self.num_latches.saturating_sub(covered);
        // frac == 0 cannot happen: the initial state is always reachable.
        frac.log2() + covered as f64 + uncovered as f64
    }

    /// Aggregate statistics of the analysis.
    pub fn stats(&self) -> ReachStats {
        ReachStats {
            partitions: self.parts.len(),
            iterations: self.parts.iter().map(|p| p.iterations).sum(),
            bailed_out: self.parts.iter().filter(|p| p.bailed).count(),
            log2_states: self.log2_states(),
            peak_live_nodes: self.parts.iter().map(|p| p.peak_live).max().unwrap_or(0),
            clusters: self.parts.iter().map(|p| p.image.clusters).sum(),
            max_cluster_nodes: self
                .parts
                .iter()
                .map(|p| p.image.max_cluster_nodes)
                .max()
                .unwrap_or(0),
            gc_runs: self.parts.iter().map(|p| p.gc_runs).sum(),
            cache_hits: self.parts.iter().map(|p| p.cache_hits).sum(),
            cache_misses: self.parts.iter().map(|p| p.cache_misses).sum(),
            constrain_wins: self.parts.iter().map(|p| p.image.constrain_wins).sum(),
            restrict_wins: self.parts.iter().map(|p| p.image.restrict_wins).sum(),
            retries: self.parts.iter().map(|p| p.retries).sum(),
            merge_retries: self.parts.iter().map(|p| p.image.merge_retries).sum(),
            worker_panics: self.parts.iter().filter(|p| p.worker_panic).count() as u64,
        }
    }

    /// Whether two analyses reached exactly the same sets: same
    /// partitions (latches, bail status) and, per surviving partition,
    /// the same reachable *function*. Node ids are compared after an
    /// identity transfer into a common scratch manager, so differing
    /// post-compaction layouts (e.g. per-bit vs. clustered schedules)
    /// cannot mask or fake agreement. This is the oracle behind the
    /// reach benchmark's "identical reached sets" assertion.
    pub fn same_reached_sets(&self, other: &Reachability) -> bool {
        if self.parts.len() != other.parts.len() {
            return false;
        }
        self.parts.iter().zip(&other.parts).all(|(a, b)| {
            if a.latches != b.latches || a.bailed != b.bailed {
                return false;
            }
            if a.bailed {
                return true;
            }
            let n = a.manager.num_vars().max(b.manager.num_vars());
            let identity: FxHashMap<VarId, VarId> =
                (0..n as u32).map(|v| (VarId(v), VarId(v))).collect();
            let mut scratch = Manager::with_vars(n);
            let ra = scratch.transfer_from(&a.manager, a.reach, &identity);
            let rb = scratch.transfer_from(&b.manager, b.reach, &identity);
            ra == rb
        })
    }
}

/// Folds a failed analysis attempt's work counters into the result
/// that supersedes it, so `ReachStats` accounts for every iteration and
/// kernel operation actually spent on the partition. Shape fields
/// (clusters, reach, bail status) stay `kept`'s.
fn fold_failed_attempt(mut kept: PartitionReach, failed: &PartitionReach) -> PartitionReach {
    kept.iterations += failed.iterations;
    kept.peak_live = kept.peak_live.max(failed.peak_live);
    kept.gc_runs += failed.gc_runs;
    kept.cache_hits += failed.cache_hits;
    kept.cache_misses += failed.cache_misses;
    kept.retries += failed.retries;
    kept.worker_panic |= failed.worker_panic;
    kept
}

/// Whether a bail cause is worth the ladder's one halved-budget retry:
/// step and node trips are often transient (a GC-adjacent spike, a
/// cluster-merge pressure burst, an injected fault), while a passed
/// deadline or a raised cancel flag will trip again immediately.
fn is_transient(cause: Option<ResourceExhausted>) -> bool {
    matches!(cause, Some(ResourceExhausted::Steps) | Some(ResourceExhausted::Nodes))
}

/// The bail-to-⊤ placeholder for a partition whose analysis panicked:
/// indistinguishable from a budget bail downstream (no constraint, no
/// variables), but flagged so `ReachStats::worker_panics` reports it.
fn panicked_partition(partition: &Partition) -> PartitionReach {
    PartitionReach {
        latches: partition.latches.clone(),
        manager: Manager::new(),
        reach: NodeId::TRUE,
        ps_var: HashMap::new(),
        iterations: 0,
        bailed: true,
        peak_live: 0,
        image: ImageStats::default(),
        gc_runs: 0,
        cache_hits: 0,
        cache_misses: 0,
        bail_cause: None,
        retries: 0,
        worker_panic: true,
    }
}

/// [`analyze_partition`] behind a panic-isolation boundary: a panicking
/// analysis (an injected `panic` fault, or a genuine bug in one cone)
/// degrades that partition to bail-to-⊤ — still a sound
/// over-approximation — instead of unwinding through the worker pool.
/// The partition's private manager is dropped by the unwind, so no
/// shared state is left inconsistent.
fn analyze_partition_isolated(
    netlist: &Netlist,
    partition: &Partition,
    options: &ReachabilityOptions,
    gov: &ResourceGovernor,
) -> PartitionReach {
    catch_unwind(AssertUnwindSafe(|| analyze_partition(netlist, partition, options, gov)))
        .unwrap_or_else(|_| panicked_partition(partition))
}

/// Analyzes one top-level partition down the degradation ladder:
/// clustered image engine first; on a tripped cap one per-bit retry
/// under a fresh step fork (the legacy schedule trades speed for a
/// flatter intermediate-product profile, so it may fit where clusters
/// did not — and when the *surrounding* governor is already cancelled
/// or out of budget the retry's first checkpoint unwinds it almost for
/// free); then adaptive splitting: a partition that still exhausts its
/// caps is split in half and each half re-analyzed — every subset's
/// reachable set is still an over-approximation of the truth, so
/// splitting trades precision for tractability, never soundness. The
/// returned order reproduces the historical sequential worklist
/// exactly: the worklist pushed `[..mid]` then `[mid..]` and popped
/// LIFO, i.e. it expanded the upper half first, depth-first.
fn analyze_adaptive(
    netlist: &Netlist,
    partition: Partition,
    options: &ReachabilityOptions,
    gov: &ResourceGovernor,
) -> Vec<PartitionReach> {
    let part_gov = gov
        .fork_steps(options.step_budget)
        .with_node_limit(gov.node_limit().min(options.node_limit));
    let mut analyzed = analyze_partition_isolated(netlist, &partition, options, &part_gov);
    // Retry rung: a transient trip (a GC-adjacent step spike, node
    // pressure from cluster merges, an injected fault) may not recur,
    // so the same configuration gets one more try at *half* the
    // sub-budget — cheap insurance before degrading precision — while
    // deadline/cancel bails skip straight down the ladder.
    if analyzed.bailed && !analyzed.worker_panic && is_transient(analyzed.bail_cause) {
        let retry_gov = gov
            .fork_steps(options.step_budget / 2)
            .with_node_limit(gov.node_limit().min(options.node_limit));
        let mut retry = analyze_partition_isolated(netlist, &partition, options, &retry_gov);
        retry.retries += 1;
        analyzed = if retry.bailed {
            fold_failed_attempt(analyzed, &retry)
        } else {
            fold_failed_attempt(retry, &analyzed)
        };
    }
    if analyzed.bailed && options.cluster_limit != 0 {
        let per_bit = ReachabilityOptions { cluster_limit: 0, ..*options };
        let retry_gov = gov
            .fork_steps(options.step_budget)
            .with_node_limit(gov.node_limit().min(options.node_limit));
        let retry = analyze_partition_isolated(netlist, &partition, &per_bit, &retry_gov);
        analyzed = if retry.bailed {
            fold_failed_attempt(analyzed, &retry)
        } else {
            fold_failed_attempt(retry, &analyzed)
        };
    }
    if analyzed.bailed && partition.latches.len() > 8 {
        let mid = partition.latches.len() / 2;
        let hi = Partition { latches: partition.latches[mid..].to_vec() };
        let lo = Partition { latches: partition.latches[..mid].to_vec() };
        let mut out = analyze_adaptive(netlist, hi, options, gov);
        out.extend(analyze_adaptive(netlist, lo, options, gov));
        out
    } else {
        vec![analyzed]
    }
}

fn analyze_partition(
    netlist: &Netlist,
    partition: &Partition,
    options: &ReachabilityOptions,
    gov: &ResourceGovernor,
) -> PartitionReach {
    let k = partition.latches.len();
    let mut m = Manager::with_kernel_config(options.kernel);
    // Layout: (present_i, next_i) interleaved per latch, then free inputs.
    let mut ps_var: HashMap<SignalId, VarId> = HashMap::new();
    let mut ns_var: Vec<VarId> = Vec::with_capacity(k);
    for (i, &l) in partition.latches.iter().enumerate() {
        ps_var.insert(l, VarId(2 * i as u32));
        ns_var.push(VarId(2 * i as u32 + 1));
        m.new_var();
        m.new_var();
    }
    // Free leaves: union of supports of the partition's next-state cones,
    // minus partition latches.
    let mut cone_map: HashMap<SignalId, VarId> = ps_var.clone();
    let mut free_vars: Vec<VarId> = Vec::new();
    for &l in &partition.latches {
        let next = netlist.latch_next(l).expect("validated netlist");
        for s in netlist.support(next) {
            cone_map.entry(s).or_insert_with(|| {
                let v = VarId(m.num_vars() as u32);
                m.new_var();
                free_vars.push(v);
                v
            });
        }
    }
    // Every BDD operation from here on runs under `gov`, so a tripped
    // limit surfaces *inside* a cone build or image step, not at the next
    // iteration boundary. The iteration cap reuses the `Steps` verdict.
    let mut iterations = 0usize;
    let mut image_stats = ImageStats::default();
    let governed = (|| -> Result<NodeId, ResourceExhausted> {
        // Next-state functions and transition conjuncts.
        let mut extractor = ConeExtractor::new(netlist, cone_map);
        let mut conjuncts: Vec<NodeId> = Vec::with_capacity(k);
        for (i, &l) in partition.latches.iter().enumerate() {
            let next = netlist.latch_next(l).expect("validated netlist");
            let delta = extractor.try_bdd(&mut m, next, gov)?;
            let nv = m.var(ns_var[i]);
            conjuncts.push(m.try_xnor(nv, delta, gov)?);
        }
        // Variables to eliminate per image: present state, then free
        // inputs — the canonical order the engine schedules from.
        let present_vars: Vec<VarId> =
            partition.latches.iter().map(|l| ps_var[l]).collect();
        let mut quantify: Vec<VarId> = present_vars.clone();
        quantify.extend(free_vars.iter().copied());
        // The image engine owns clustering, ordering, and the
        // early-quantification schedule; every decision is a function of
        // canonical per-partition data, so the analysis stays
        // deterministic across `jobs` values.
        let mut engine = if options.cluster_limit == 0 {
            ImageEngine::per_bit(&m, &conjuncts, &quantify)
        } else {
            ImageEngine::try_clustered(&mut m, &conjuncts, &quantify, options.cluster_limit, gov)?
        };
        image_stats = engine.stats();

        // Initial state.
        let init_assign: Vec<(VarId, bool)> = partition
            .latches
            .iter()
            .map(|&l| (ps_var[&l], netlist.latch_init(l)))
            .collect();
        let init = m.minterm(&init_assign);

        // Fixed point. The next-state → present-state renaming is
        // registered once, outside the loop: its replacement variables
        // are implicit GC roots, and a single substitution id lets the
        // `VCompose` computed-table entries survive across iterations.
        let rename_subst = {
            let pairs: Vec<(VarId, NodeId)> = partition
                .latches
                .iter()
                .enumerate()
                .map(|(i, &l)| (ns_var[i], m.var(ps_var[&l])))
                .collect();
            m.register_substitution(&pairs)
        };
        let mut reach = init;
        let mut frontier = init;
        let mut gc_roots: Vec<NodeId> = Vec::with_capacity(engine.clusters().len() + 2);
        loop {
            // Iteration-boundary safe point: the fault-injection site,
            // plus an unamortized deadline/cancel poll — an iteration
            // served entirely from warm caches charges no steps, so
            // without this the deadline check interval would be
            // unbounded.
            gov.fault_site(FaultSite::ReachFixpoint)?;
            gov.poll_interrupt()?;
            if iterations >= options.max_iterations {
                return Err(ResourceExhausted::Steps);
            }
            iterations += 1;
            // Image of the frontier over the engine's schedule.
            let product = engine.try_image(&mut m, frontier, gov)?;
            let image = m.try_vector_compose(product, rename_subst, gov)?;
            let fresh = m.try_diff(image, reach, gov)?;
            if fresh.is_false() {
                break;
            }
            // Any frontier between `fresh` and `fresh ∪ reach` drives
            // the same fixpoint, so the engine may pick a smaller
            // representative (restrict against the reached set). This
            // must use the *pre-update* reached set: `fresh` is disjoint
            // from it, which pins the simplification to cover `fresh`
            // exactly — against the updated set (`fresh ⊆ reach`) the
            // care set would be empty over `fresh` and the frontier
            // could collapse.
            frontier = engine.try_simplified_frontier(&mut m, fresh, reach, gov)?;
            reach = m.try_or(reach, image, gov)?;
            // End-of-iteration safe point: everything still needed is
            // listed as a root, so the kernel may sweep the dead image
            // intermediates (and with them the stale cache entries)
            // whenever its dead-node policy says it is worth it.
            gc_roots.clear();
            gc_roots.extend_from_slice(engine.clusters());
            gc_roots.push(reach);
            gc_roots.push(frontier);
            m.try_maybe_gc(&gc_roots, gov)?;
        }
        image_stats = engine.stats();
        Ok(reach)
    })();
    // Counters are captured before compaction/drop so both the success
    // and the bail arm report the same well-defined window (the
    // fixpoint itself), identically for any `jobs` value.
    let kernel_stats = m.stats();
    let peak_live = kernel_stats.peak_live;
    match governed {
        Ok(r) => {
            // Final sweep + in-place compaction: everything except the
            // reachable set (and the variable nodes) is dead here, so
            // the node array slides down and shrinks while the manager
            // keeps serving the original interleaved variable layout —
            // no cross-manager transfer, and every later projection is
            // the same canonical function it would have been mid-run.
            let mapped = m.compact(&[r]);
            PartitionReach {
                latches: partition.latches.clone(),
                manager: m,
                reach: mapped[0],
                ps_var,
                iterations,
                bailed: false,
                peak_live,
                image: image_stats,
                gc_runs: kernel_stats.gc_runs,
                cache_hits: kernel_stats.cache_hits,
                cache_misses: kernel_stats.cache_misses,
                bail_cause: None,
                retries: 0,
                worker_panic: false,
            }
        }
        Err(cause) => PartitionReach {
            // Bail-to-⊤: the analysis manager is dropped wholesale; the
            // partition carries no constraint and no variables.
            latches: partition.latches.clone(),
            manager: Manager::new(),
            reach: NodeId::TRUE,
            ps_var: HashMap::new(),
            iterations,
            bailed: true,
            peak_live,
            image: image_stats,
            gc_runs: kernel_stats.gc_runs,
            cache_hits: kernel_stats.cache_hits,
            cache_misses: kernel_stats.cache_misses,
            bail_cause: Some(cause),
            retries: 0,
            worker_panic: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::GateKind;

    /// 3-bit binary counter that sticks at 7 (next = count unless at max).
    fn saturating_counter() -> Netlist {
        let mut n = Netlist::new("sat3");
        let q: Vec<SignalId> = (0..3).map(|i| n.add_latch(format!("q{i}"), false)).collect();
        // carry chain: inc0 = 1 (toggle q0), inc1 = q0, inc2 = q0&q1
        let at_max = n.add_gate("at_max", GateKind::And, vec![q[0], q[1], q[2]]);
        let not_max = n.add_gate("not_max", GateKind::Not, vec![at_max]);
        let t0 = n.add_gate("t0", GateKind::Xor, vec![q[0], not_max]);
        let c1 = n.add_gate("c1", GateKind::And, vec![q[0], not_max]);
        let t1 = n.add_gate("t1", GateKind::Xor, vec![q[1], c1]);
        let c2 = n.add_gate("c2", GateKind::And, vec![q[1], c1]);
        let t2 = n.add_gate("t2", GateKind::Xor, vec![q[2], c2]);
        n.set_latch_next(q[0], t0);
        n.set_latch_next(q[1], t1);
        n.set_latch_next(q[2], t2);
        n.add_output("msb", q[2]);
        n
    }

    /// One-hot ring of 4 latches starting 1000: only 4 reachable states.
    fn one_hot_ring() -> Netlist {
        let mut n = Netlist::new("ring4");
        let q: Vec<SignalId> = (0..4)
            .map(|i| n.add_latch(format!("q{i}"), i == 0))
            .collect();
        for i in 0..4 {
            n.set_latch_next(q[(i + 1) % 4], q[i]);
        }
        n.add_output("o", q[3]);
        n
    }

    #[test]
    fn counter_reaches_all_states() {
        let n = saturating_counter();
        let r = Reachability::analyze(&n, ReachabilityOptions::default());
        let stats = r.stats();
        assert_eq!(stats.partitions, 1);
        assert!(!r.parts[0].bailed);
        assert!((stats.log2_states - 3.0).abs() < 1e-9, "all 8 states reachable");
    }

    #[test]
    fn ring_reaches_only_one_hot_states() {
        let n = one_hot_ring();
        let r = Reachability::analyze(&n, ReachabilityOptions::default());
        let stats = r.stats();
        assert!((stats.log2_states - 2.0).abs() < 1e-9, "4 of 16 states reachable");
    }

    #[test]
    fn care_set_excludes_unreachable() {
        let n = one_hot_ring();
        let mut r = Reachability::analyze(&n, ReachabilityOptions::default());
        let latches: Vec<SignalId> = n.latches().to_vec();
        let mut dst = Manager::with_vars(4);
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let care = r.care_set(&latches, &mut dst, &var_of);
        // One-hot states are reachable (care), all-zero is not.
        assert!(dst.eval(care, &[true, false, false, false]));
        assert!(dst.eval(care, &[false, false, true, false]));
        assert!(!dst.eval(care, &[false, false, false, false]));
        assert!(!dst.eval(care, &[true, true, false, false]));
    }

    #[test]
    fn care_set_projection_is_sound() {
        let n = one_hot_ring();
        let mut r = Reachability::analyze(&n, ReachabilityOptions::default());
        // Project onto two latches: states (q0,q1) ∈ {00,01,10} reachable.
        let latches: Vec<SignalId> = n.latches()[..2].to_vec();
        let mut dst = Manager::with_vars(2);
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let care = r.care_set(&latches, &mut dst, &var_of);
        assert!(dst.eval(care, &[false, false]));
        assert!(dst.eval(care, &[true, false]));
        assert!(dst.eval(care, &[false, true]));
        assert!(!dst.eval(care, &[true, true]), "q0 and q1 never both hot");
    }

    #[test]
    fn trivial_analysis_constrains_nothing() {
        let n = one_hot_ring();
        let mut r = Reachability::trivial(&n);
        let latches: Vec<SignalId> = n.latches().to_vec();
        let mut dst = Manager::with_vars(4);
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let care = r.care_set(&latches, &mut dst, &var_of);
        assert!(care.is_true());
        assert!((r.log2_states() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_falls_back_conservatively() {
        let n = saturating_counter();
        let opts = ReachabilityOptions { max_iterations: 1, ..Default::default() };
        let r = Reachability::analyze(&n, opts);
        assert!(r.stats().bailed_out >= 1);
        assert!((r.log2_states() - 3.0).abs() < 1e-9, "fallback claims everything");
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let n = saturating_counter();
        let a = Reachability::analyze(&n, ReachabilityOptions::default());
        let b = Reachability::analyze_governed(
            &n,
            ReachabilityOptions::default(),
            &ResourceGovernor::unlimited(),
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn starved_step_budget_bails_soundly() {
        let n = one_hot_ring();
        let opts = ReachabilityOptions { step_budget: 4, ..Default::default() };
        let mut r = Reachability::analyze(&n, opts);
        let stats = r.stats();
        assert!(stats.bailed_out >= 1, "a 4-step budget cannot finish");
        // The fallback claims everything reachable — sound, just useless.
        assert!((stats.log2_states - 4.0).abs() < 1e-9);
        let latches: Vec<SignalId> = n.latches().to_vec();
        let mut dst = Manager::with_vars(4);
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let care = r.care_set(&latches, &mut dst, &var_of);
        assert!(care.is_true(), "bailed partitions must not constrain anything");
    }

    #[test]
    fn tiny_node_ceiling_trips_mid_operation() {
        // A node limit this small trips inside the first cone build —
        // before the old per-iteration check would ever have run.
        let n = saturating_counter();
        let opts = ReachabilityOptions { node_limit: 8, ..Default::default() };
        let r = Reachability::analyze(&n, opts);
        assert!(r.stats().bailed_out >= 1);
        assert!((r.log2_states() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn starved_care_set_skips_partitions() {
        let n = one_hot_ring();
        let mut r = Reachability::analyze(&n, ReachabilityOptions::default());
        // A strict sub-support forces a real projection, which a zero
        // step budget cannot pay for.
        let latches: Vec<SignalId> = n.latches()[..2].to_vec();
        let mut dst = Manager::with_vars(2);
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let gov = ResourceGovernor::unlimited().with_step_limit(0);
        let (care, skipped) = r.try_care_set(&latches, &mut dst, &var_of, &gov);
        assert!(skipped >= 1);
        assert!(care.is_true(), "skipped partitions contribute no constraint");
    }

    #[test]
    fn shared_care_set_matches_in_place_care_set() {
        let n = one_hot_ring();
        let mut r = Reachability::analyze(&n, ReachabilityOptions::default());
        // Strict sub-support so a genuine projection happens in both paths.
        let latches: Vec<SignalId> = n.latches()[..2].to_vec();
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let gov = ResourceGovernor::unlimited();
        let mut dst_shared = Manager::with_vars(2);
        let shared = r.try_care_set_shared(&latches, &mut dst_shared, &var_of, &gov).0;
        let mut dst_mut = Manager::with_vars(2);
        let in_place = r.try_care_set(&latches, &mut dst_mut, &var_of, &gov).0;
        // Same canonical function in identically laid-out managers ⇒
        // identical node ids and identical evaluations.
        assert_eq!(shared, in_place);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(dst_shared.eval(shared, &[a, b]), dst_mut.eval(in_place, &[a, b]));
            }
        }
    }

    /// Regression: a bailed partition's manager is dropped (empty
    /// manager, no `ps_var` entries). `log2_states` used to index the
    /// dropped variables and return garbage; it must instead count the
    /// bailed partition's latches as full-space.
    #[test]
    fn bailed_partition_counts_as_full_space() {
        let n = one_hot_ring();
        let mut r = Reachability::analyze(&n, ReachabilityOptions::default());
        assert!((r.log2_states() - 2.0).abs() < 1e-9);
        // Forcibly bail the only partition, exactly as the governor
        // bail-to-⊤ path leaves it: manager dropped, reach = ⊤, no vars.
        for part in &mut r.parts {
            part.manager = Manager::new();
            part.reach = NodeId::TRUE;
            part.ps_var = HashMap::new();
            part.bailed = true;
        }
        assert!(
            (r.log2_states() - 4.0).abs() < 1e-9,
            "bailed partitions must count as full-space, got {}",
            r.log2_states()
        );
        // And neither care-set path may touch the dropped variables.
        let latches: Vec<SignalId> = n.latches().to_vec();
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let gov = ResourceGovernor::unlimited();
        let mut dst = Manager::with_vars(4);
        let (care, skipped) = r.try_care_set(&latches, &mut dst, &var_of, &gov);
        assert!(care.is_true());
        assert_eq!(skipped, 0);
        let (care, skipped) = r.try_care_set_shared(&latches, &mut dst, &var_of, &gov);
        assert!(care.is_true());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn parallel_jobs_match_sequential_analysis() {
        for netlist in [saturating_counter(), one_hot_ring()] {
            // Tiny partitions force several independent fixpoint tasks.
            let base = ReachabilityOptions {
                partition: crate::partition::PartitionOptions { max_latches: 1 },
                ..Default::default()
            };
            let seq = Reachability::analyze(&netlist, ReachabilityOptions { jobs: 1, ..base });
            let par = Reachability::analyze(&netlist, ReachabilityOptions { jobs: 4, ..base });
            assert_eq!(seq.stats(), par.stats());
            assert_eq!(seq.num_partitions(), par.num_partitions());
            for (a, b) in seq.parts.iter().zip(&par.parts) {
                assert_eq!(a.latches, b.latches);
                assert_eq!(a.reach, b.reach, "canonical reach sets must agree");
                assert_eq!(a.bailed, b.bailed);
            }
        }
    }

    #[test]
    fn clustered_and_per_bit_reach_identical_sets() {
        for netlist in [saturating_counter(), one_hot_ring()] {
            let clustered = Reachability::analyze(&netlist, ReachabilityOptions::default());
            let per_bit = Reachability::analyze(
                &netlist,
                ReachabilityOptions { cluster_limit: 0, ..Default::default() },
            );
            assert!(clustered.same_reached_sets(&per_bit));
            assert!(per_bit.same_reached_sets(&clustered));
            assert!(
                (clustered.log2_states() - per_bit.log2_states()).abs() < 1e-12,
                "schedules must not change the fixpoint"
            );
            // The default engine actually clusters: fewer clusters than
            // the per-bit engine's one-per-latch.
            assert!(clustered.stats().clusters <= per_bit.stats().clusters);
            assert!(per_bit.stats().clusters >= netlist.num_latches());
        }
    }

    #[test]
    fn reach_stats_report_kernel_counters() {
        let n = saturating_counter();
        let stats = Reachability::analyze(&n, ReachabilityOptions::default()).stats();
        assert!(stats.cache_misses > 0, "a real fixpoint must miss the cold cache");
        assert!(stats.clusters > 0);
        assert!(stats.max_cluster_nodes > 0);
    }

    #[test]
    fn cancellation_mid_image_drains_cleanly() {
        let n = one_hot_ring();
        let gov = ResourceGovernor::unlimited();
        gov.cancel();
        let r = Reachability::analyze_governed(&n, ReachabilityOptions::default(), &gov);
        let stats = r.stats();
        // Every partition unwinds to the sound bail-to-⊤ fallback; the
        // per-bit retry rung is also cancelled at its first checkpoint.
        assert_eq!(stats.bailed_out, stats.partitions);
        assert!((stats.log2_states - 4.0).abs() < 1e-9);
    }

    #[test]
    fn injected_transient_fault_is_absorbed_by_the_retry_rung() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = saturating_counter();
        // A one-shot budget trip at the first fixpoint safe point: the
        // attempt bails with `Steps`, the ladder's transient rung retries
        // at half sub-budget, the plan's crossing counter has moved past
        // the rule, and the partition completes exactly.
        let plan =
            Arc::new(FaultPlan::new(21).with_rule(FaultSite::ReachFixpoint, 1, FaultKind::Budget));
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let r = Reachability::analyze_governed(&n, ReachabilityOptions::default(), &gov);
        let stats = r.stats();
        assert_eq!(plan.faults_fired(), 1);
        assert_eq!(stats.retries, 1, "the halved-budget retry must be charged");
        assert_eq!(stats.bailed_out, 0, "the retry must absorb the transient fault");
        assert!((stats.log2_states - 3.0).abs() < 1e-9, "and lose no precision");
    }

    #[test]
    fn injected_panic_degrades_one_partition_and_the_ladder_recovers() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = saturating_counter();
        let plan =
            Arc::new(FaultPlan::new(23).with_rule(FaultSite::ReachFixpoint, 1, FaultKind::Panic));
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let r = Reachability::analyze_governed(&n, ReachabilityOptions::default(), &gov);
        let stats = r.stats();
        // The panic is caught at the partition isolation boundary and
        // flagged; the per-bit rung then re-runs the analysis past the
        // spent one-shot rule, so no precision is lost either.
        assert_eq!(plan.faults_fired(), 1);
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.bailed_out, 0, "the per-bit rung must recover the partition");
        assert!((stats.log2_states - 3.0).abs() < 1e-9);
        // A panicked attempt is not retried by the transient rung.
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn injected_cancel_defeats_every_rung_of_the_ladder() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = one_hot_ring();
        let plan =
            Arc::new(FaultPlan::new(29).with_rule(FaultSite::ReachFixpoint, 1, FaultKind::Cancel));
        let gov = ResourceGovernor::unlimited().with_fault_plan(Arc::clone(&plan));
        let r = Reachability::analyze_governed(&n, ReachabilityOptions::default(), &gov);
        let stats = r.stats();
        // The injected cancel raises the shared flag, which is
        // persistent: the transient rung is skipped (not a Steps/Nodes
        // bail) and the per-bit rung trips at its first checkpoint, so
        // the partition degrades to the sound bail-to-⊤ fallback.
        assert_eq!(stats.bailed_out, stats.partitions);
        assert_eq!(stats.retries, 0, "cancellation must not trigger the transient rung");
        assert!((stats.log2_states - 4.0).abs() < 1e-9, "fallback claims everything");
    }

    #[test]
    fn simulation_states_are_inside_care_set() {
        // Soundness cross-check: any state visited by simulation must be
        // in the care set.
        let n = saturating_counter();
        let mut r = Reachability::analyze(&n, ReachabilityOptions::default());
        let latches: Vec<SignalId> = n.latches().to_vec();
        let mut dst = Manager::with_vars(3);
        let var_of: HashMap<SignalId, VarId> =
            latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
        let care = r.care_set(&latches, &mut dst, &var_of);
        let mut sim = symbi_netlist::sim::Simulator::new(&n);
        for _ in 0..10 {
            let state: Vec<bool> = sim.state().iter().map(|&w| w & 1 == 1).collect();
            assert!(dst.eval(care, &state), "simulated state {state:?} outside care set");
            sim.step(&[]);
        }
    }
}
