//! Overlapping latch partitioning by structural dependence (§3.5.1).
//!
//! Goals, quoting the paper:
//!
//! > For each function f, present-state inputs supp_ps(f) are represented
//! > in at least one partition. Each partition selects additional logic to
//! > maximize accuracy of reachability analysis.
//!
//! The heuristic below collects the present-state supports of every
//! next-state and primary-output function, then first-fit packs them into
//! partitions capped at [`PartitionOptions::max_latches`] (the paper
//! "typically limited to 100 latches"), preferring partitions with the
//! largest overlap (a connectivity cost measure). Each partition is then
//! *closed* under next-state dependence up to the cap, so the transition
//! relation of its own latches reads as few free external latches as
//! possible.

use std::collections::{HashMap, HashSet};
use symbi_netlist::{Netlist, SignalId};

/// One overlapping latch subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Latch output signals in this partition, sorted by id.
    pub latches: Vec<SignalId>,
}

impl Partition {
    /// Does this partition contain every latch in `support`?
    pub fn covers(&self, support: &[SignalId]) -> bool {
        support.iter().all(|s| self.latches.binary_search(s).is_ok())
    }
}

/// Tuning knobs for [`partition_latches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Hard cap on latches per partition (the paper uses ~100).
    pub max_latches: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { max_latches: 100 }
    }
}

/// Computes overlapping latch partitions for `netlist`.
///
/// Every present-state support of a next-state or output function that
/// fits under the cap is fully contained in at least one partition;
/// oversized supports are truncated to the cap (their functions then see a
/// partial care set, which is still sound).
pub fn partition_latches(netlist: &Netlist, options: PartitionOptions) -> Vec<Partition> {
    let cap = options.max_latches.max(1);

    // Present-state supports of all functions of interest.
    let mut supports: Vec<Vec<SignalId>> = Vec::new();
    for &l in netlist.latches() {
        let next = netlist.latch_next(l).expect("validated netlist");
        let mut supp = netlist.support_ps(next);
        // The latch itself belongs with its cone for image accuracy.
        if supp.binary_search(&l).is_err() {
            supp.push(l);
            supp.sort_unstable();
        }
        supports.push(supp);
    }
    for &(_, out) in netlist.outputs() {
        supports.push(netlist.support_ps(out));
    }
    supports.retain(|s| !s.is_empty());
    for s in &mut supports {
        s.truncate(cap);
    }
    // Largest supports first: they are hardest to place.
    supports.sort_by_key(|s| std::cmp::Reverse(s.len()));
    supports.dedup();

    let mut partitions: Vec<HashSet<SignalId>> = Vec::new();
    for supp in &supports {
        if partitions.iter().any(|p| supp.iter().all(|s| p.contains(s))) {
            continue; // already covered
        }
        // Find the partition that can absorb this support with the best
        // connectivity (largest overlap), if any stays under the cap.
        // Disjoint supports start their own partition: packing unrelated
        // state machines together only multiplies the product diameter
        // without sharpening either projection.
        let mut best: Option<(usize, usize)> = None; // (index, overlap)
        for (i, p) in partitions.iter().enumerate() {
            let overlap = supp.iter().filter(|s| p.contains(s)).count();
            let grown = p.len() + supp.len() - overlap;
            if overlap > 0 && grown <= cap && best.is_none_or(|(_, o)| overlap > o) {
                best = Some((i, overlap));
            }
        }
        match best {
            Some((i, _)) => partitions[i].extend(supp.iter().copied()),
            None => partitions.push(supp.iter().copied().collect()),
        }
    }
    if partitions.is_empty() && !netlist.latches().is_empty() {
        // No function reads any state (degenerate); analyze all latches in
        // capped chunks anyway so don't cares are still available.
        for chunk in netlist.latches().chunks(cap) {
            partitions.push(chunk.iter().copied().collect());
        }
    }

    // Closure: pull in latches the partition's next-state logic depends on,
    // while room remains (improves image accuracy — "additional logic to
    // maximize accuracy").
    let ps_deps: HashMap<SignalId, Vec<SignalId>> = netlist
        .latches()
        .iter()
        .map(|&l| {
            let next = netlist.latch_next(l).expect("validated netlist");
            (l, netlist.support_ps(next))
        })
        .collect();
    for p in &mut partitions {
        // Expand in sorted order: `p` is a hash set, and when the cap
        // binds mid-sweep the *iteration order* decides which deps make
        // the cut — left unsorted, two identical calls could return
        // different partitions (per-instance hasher seeds), breaking
        // run-to-run determinism of everything downstream.
        let mut frontier: Vec<SignalId> = p.iter().copied().collect();
        frontier.sort_unstable();
        while p.len() < cap {
            let mut added = Vec::new();
            for &l in &frontier {
                for &dep in ps_deps.get(&l).into_iter().flatten() {
                    if p.len() + added.len() >= cap {
                        break;
                    }
                    if !p.contains(&dep) && !added.contains(&dep) {
                        added.push(dep);
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            p.extend(added.iter().copied());
            added.sort_unstable();
            frontier = added;
        }
    }

    // Coverage guarantee: truncating an oversized support to the cap can
    // drop a latch from every packed partition. Sweep the stragglers into
    // catch-all partitions so each latch is analyzed *somewhere* — a
    // partial projection of its neighbourhood is still a sound care set.
    let uncovered: Vec<SignalId> = netlist
        .latches()
        .iter()
        .copied()
        .filter(|l| !partitions.iter().any(|p| p.contains(l)))
        .collect();
    for chunk in uncovered.chunks(cap) {
        partitions.push(chunk.iter().copied().collect());
    }

    let mut out: Vec<Partition> = partitions
        .into_iter()
        .map(|set| {
            let mut latches: Vec<SignalId> = set.into_iter().collect();
            latches.sort_unstable();
            Partition { latches }
        })
        .collect();
    // Drop partitions subsumed by others (overlap is fine, duplication is
    // wasted work).
    out.sort_by_key(|p| std::cmp::Reverse(p.latches.len()));
    let mut kept: Vec<Partition> = Vec::new();
    for p in out {
        if !kept.iter().any(|k| p.latches.iter().all(|l| k.latches.binary_search(l).is_ok())) {
            kept.push(p);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::GateKind;

    /// Chain of `n` latches: q0 <- in, q_{i} <- q_{i-1}; output reads last.
    fn shift_register(n: usize) -> Netlist {
        let mut net = Netlist::new("shift");
        let input = net.add_input("in");
        let latches: Vec<SignalId> = (0..n).map(|i| net.add_latch(format!("q{i}"), false)).collect();
        net.set_latch_next(latches[0], input);
        for i in 1..n {
            net.set_latch_next(latches[i], latches[i - 1]);
        }
        let out = net.add_gate("o", GateKind::Buf, vec![latches[n - 1]]);
        net.add_output("o", out);
        net
    }

    #[test]
    fn supports_are_covered() {
        let net = shift_register(6);
        let parts = partition_latches(&net, PartitionOptions::default());
        for &l in net.latches() {
            let next = net.latch_next(l).unwrap();
            let mut supp = net.support_ps(next);
            if supp.binary_search(&l).is_err() {
                supp.push(l);
                supp.sort_unstable();
            }
            assert!(
                parts.iter().any(|p| p.covers(&supp)),
                "support of {} not covered",
                net.signal_name(l)
            );
        }
    }

    #[test]
    fn cap_respected() {
        let net = shift_register(20);
        let opts = PartitionOptions { max_latches: 5 };
        let parts = partition_latches(&net, opts);
        assert!(!parts.is_empty());
        for p in &parts {
            assert!(p.latches.len() <= 5);
        }
    }

    #[test]
    fn single_partition_when_small() {
        let net = shift_register(4);
        let parts = partition_latches(&net, PartitionOptions::default());
        // Everything fits in one closed partition.
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].latches.len(), 4);
    }

    #[test]
    fn no_latches_no_partitions() {
        let mut net = Netlist::new("comb");
        let a = net.add_input("a");
        let g = net.add_gate("g", GateKind::Not, vec![a]);
        net.add_output("o", g);
        let parts = partition_latches(&net, PartitionOptions::default());
        assert!(parts.is_empty());
    }

    #[test]
    fn covers_checks_membership() {
        let net = shift_register(3);
        let latches = net.latches();
        let mut sorted = vec![latches[0], latches[2]];
        sorted.sort_unstable();
        let p = Partition { latches: sorted };
        assert!(p.covers(&[latches[0]]));
        assert!(!p.covers(&[latches[1]]));
    }
}
