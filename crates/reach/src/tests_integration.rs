//! Cross-module tests: partitioned analysis of multi-partition designs and
//! soundness against simulation.

use crate::{partition_latches, PartitionOptions, Reachability, ReachabilityOptions};
use std::collections::HashMap;
use symbi_bdd::{Manager, VarId};
use symbi_netlist::{GateKind, Netlist, SignalId};

/// Two independent one-hot rings plus a shared output — forces either one
/// partition covering both or two overlapping partitions under a cap.
fn two_rings(cap: usize) -> (Netlist, PartitionOptions) {
    let mut n = Netlist::new("rings");
    let mut all = Vec::new();
    for r in 0..2 {
        let q: Vec<SignalId> =
            (0..4).map(|i| n.add_latch(format!("r{r}q{i}"), i == 0)).collect();
        for i in 0..4 {
            n.set_latch_next(q[(i + 1) % 4], q[i]);
        }
        all.push(q);
    }
    let o = n.add_gate("o", GateKind::And, vec![all[0][0], all[1][0]]);
    n.add_output("o", o);
    (n, PartitionOptions { max_latches: cap })
}

#[test]
fn capped_partitions_still_cover_each_ring() {
    let (n, opts) = two_rings(5);
    let parts = partition_latches(&n, opts);
    assert!(parts.len() >= 2, "cap of 5 cannot hold all 8 latches");
    for p in &parts {
        assert!(p.latches.len() <= 5);
    }
}

#[test]
fn per_partition_reachability_is_exact_per_ring() {
    let (n, opts) = two_rings(5);
    let r = Reachability::analyze(
        &n,
        ReachabilityOptions { partition: opts, ..Default::default() },
    );
    // Each ring contributes log2(4) = 2 bits; the conjunction over both
    // partitions gives at most 4·4 = 16 states (log2 = 4). Overlap between
    // partitions may sharpen this further but never below the truth.
    let log2 = r.log2_states();
    assert!(log2 <= 4.0 + 1e-9, "got {log2}");
    assert!(log2 >= 2.0 - 1e-9, "cannot be sharper than the true 4·4/joint states");
}

#[test]
fn unreachable_states_never_simulated() {
    let (n, opts) = two_rings(4);
    let mut r = Reachability::analyze(
        &n,
        ReachabilityOptions { partition: opts, ..Default::default() },
    );
    let latches: Vec<SignalId> = n.latches().to_vec();
    let mut dst = Manager::with_vars(latches.len());
    let var_of: HashMap<SignalId, VarId> =
        latches.iter().enumerate().map(|(i, &l)| (l, VarId(i as u32))).collect();
    let care = r.care_set(&latches, &mut dst, &var_of);
    let mut sim = symbi_netlist::sim::Simulator::new(&n);
    for step in 0..20 {
        let state: Vec<bool> = sim.state().iter().map(|&w| w & 1 == 1).collect();
        assert!(dst.eval(care, &state), "step {step}: state {state:?} flagged unreachable");
        sim.step(&[]);
    }
    // And the care set is a strict subset of the full space here.
    assert!(dst.sat_fraction(care) < 1.0);
}
