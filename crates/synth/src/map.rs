//! Technology mapping: covers an and/inverter graph with library cells by
//! 4-feasible-cut enumeration and dynamic programming, then reports the
//! area (sum of cell areas) and delay (load-dependent linear model) that
//! Table 3.2 compares.

use crate::genlib::{Cell, Library, MAX_PINS};
use std::collections::HashMap;
use symbi_netlist::{aig, GateKind, Netlist, NodeKind, SignalId};

/// Optimization target of the covering DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapMode {
    /// Minimize total cell area, delay as tie-break.
    Area,
    /// Minimize arrival time, area as tie-break.
    Delay,
}

/// Result of mapping a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedDesign {
    /// Total area of selected cells.
    pub area: f64,
    /// Critical-path delay under the load-dependent model.
    pub delay: f64,
    /// Number of cell instances.
    pub cells: usize,
    /// Instance count per cell name.
    pub cell_histogram: Vec<(String, usize)>,
}

#[derive(Debug, Clone)]
struct Cut {
    leaves: Vec<SignalId>,
    table: u16,
}

#[derive(Debug, Clone)]
struct Match {
    cut: Cut,
    cell_index: usize,
    /// DP cost (tree-duplicated) under the chosen mode.
    cost: f64,
    arrival: f64,
}

const CUTS_PER_NODE: usize = 8;

/// Maps `netlist` onto `library`, lowering through [`aig::to_aig`] first.
///
/// # Panics
///
/// Panics if the netlist is invalid or if some cut of the subject graph
/// matches no cell (a library with inverter, 2-input NAND or AND, and a
/// buffer is always sufficient).
pub fn map(netlist: &Netlist, library: &Library, mode: MapMode) -> MappedDesign {
    let subject = aig::to_aig(netlist);
    let index = LibraryIndex::build(library);

    // Roots: primary outputs and latch next-state signals.
    let mut roots: Vec<SignalId> = subject.outputs().iter().map(|&(_, s)| s).collect();
    for &l in subject.latches() {
        roots.push(subject.latch_next(l).expect("validated netlist"));
    }

    // DP over the AIG in topological order.
    let order = subject.topo_order().expect("acyclic");
    let mut best: HashMap<SignalId, Match> = HashMap::new();
    let mut cutsets: HashMap<SignalId, Vec<Cut>> = HashMap::new();
    let leaf_cost = |s: SignalId, best: &HashMap<SignalId, Match>| -> (f64, f64) {
        match best.get(&s) {
            Some(m) => (m.cost, m.arrival),
            None => (0.0, 0.0), // primary input / latch output / constant
        }
    };
    for g in order {
        let cuts = enumerate_cuts(&subject, g, &cutsets);
        // Pick the best matching cell over all non-trivial cuts.
        let mut chosen: Option<Match> = None;
        for cut in &cuts {
            if cut.leaves.len() == 1 && cut.leaves[0] == g {
                continue; // the unit cut does not implement the node
            }
            let Some(cell_index) = index.lookup(cut.leaves.len(), cut.table) else {
                continue;
            };
            let cell = &library.cells[cell_index];
            let mut cost = cell.area;
            let mut arrive = 0f64;
            for &leaf in &cut.leaves {
                let (c, a) = leaf_cost(leaf, &best);
                cost += c;
                arrive = arrive.max(a);
            }
            // Unit-load estimate during DP; the real load model is applied
            // on the selected cover below.
            arrive += cell.delay_block + cell.delay_fanout;
            let candidate = Match { cut: cut.clone(), cell_index, cost, arrival: arrive };
            let better = match (&chosen, mode) {
                (None, _) => true,
                (Some(cur), MapMode::Area) => {
                    (candidate.cost, candidate.arrival) < (cur.cost, cur.arrival)
                }
                (Some(cur), MapMode::Delay) => {
                    (candidate.arrival, candidate.cost) < (cur.arrival, cur.cost)
                }
            };
            if better {
                chosen = Some(candidate);
            }
        }
        let m = chosen.unwrap_or_else(|| {
            panic!(
                "no library cell covers node `{}` — library lacks basic cells",
                subject.signal_name(g)
            )
        });
        best.insert(g, m);
        cutsets.insert(g, cuts);
    }

    // Select the cover from the roots down; shared nodes count once.
    let mut selected: Vec<SignalId> = Vec::new();
    let mut on_cover: HashMap<SignalId, bool> = HashMap::new();
    let mut stack: Vec<SignalId> = roots.clone();
    while let Some(s) = stack.pop() {
        if !matches!(subject.kind(s), NodeKind::Gate(_)) {
            continue;
        }
        if on_cover.insert(s, true).is_some() {
            continue;
        }
        selected.push(s);
        stack.extend(best[&s].cut.leaves.iter().copied());
    }

    // Load model: fanout of a node = number of selected cells reading it
    // plus one per root reference.
    let mut load: HashMap<SignalId, usize> = HashMap::new();
    for &s in &selected {
        for &leaf in &best[&s].cut.leaves {
            *load.entry(leaf).or_insert(0) += 1;
        }
    }
    for &r in &roots {
        *load.entry(r).or_insert(0) += 1;
    }

    // Arrival times over the cover (selected nodes form a DAG; process in
    // subject topological order).
    let mut arrival: HashMap<SignalId, f64> = HashMap::new();
    let order = subject.topo_order().expect("acyclic");
    let mut area = 0f64;
    let mut histogram: HashMap<String, usize> = HashMap::new();
    for g in order {
        if !on_cover.contains_key(&g) {
            continue;
        }
        let m = &best[&g];
        let cell = &library.cells[m.cell_index];
        area += cell.area;
        *histogram.entry(cell.name.clone()).or_insert(0) += 1;
        let input_arrival = m
            .cut
            .leaves
            .iter()
            .map(|l| arrival.get(l).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let fanout = load.get(&g).copied().unwrap_or(1) as f64;
        arrival.insert(g, input_arrival + cell.delay_block + cell.delay_fanout * fanout);
    }
    let delay = roots
        .iter()
        .map(|r| arrival.get(r).copied().unwrap_or(0.0))
        .fold(0.0f64, f64::max);

    let mut cell_histogram: Vec<(String, usize)> = histogram.into_iter().collect();
    cell_histogram.sort();
    MappedDesign { area, delay, cells: selected.len(), cell_histogram }
}

/// All tts of library cells, keyed by (arity, permuted truth table).
struct LibraryIndex {
    by_table: HashMap<(usize, u16), usize>,
}

impl LibraryIndex {
    fn build(library: &Library) -> Self {
        let mut by_table: HashMap<(usize, u16), usize> = HashMap::new();
        for (i, cell) in library.cells.iter().enumerate() {
            for table in permuted_tables(cell) {
                let key = (cell.arity(), table);
                match by_table.get(&key) {
                    Some(&j) if library.cells[j].area <= cell.area => {}
                    _ => {
                        by_table.insert(key, i);
                    }
                }
            }
        }
        LibraryIndex { by_table }
    }

    fn lookup(&self, arity: usize, table: u16) -> Option<usize> {
        let masked = table & table_mask(arity);
        self.by_table.get(&(arity, masked)).copied()
    }
}

fn table_mask(arity: usize) -> u16 {
    if arity >= 4 {
        0xffff
    } else {
        (1u16 << (1 << arity)) - 1
    }
}

/// All input permutations of a cell's truth table.
fn permuted_tables(cell: &Cell) -> Vec<u16> {
    let k = cell.arity();
    let mut perms: Vec<Vec<usize>> = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    permutations(&mut idx, 0, &mut perms);
    let mask = table_mask(k);
    perms
        .into_iter()
        .map(|perm| {
            let mut out = 0u16;
            for row in 0..1u16 << k {
                let mut src_row = 0u16;
                for (dst, &src) in perm.iter().enumerate() {
                    if row >> dst & 1 == 1 {
                        src_row |= 1 << src;
                    }
                }
                if cell.table >> src_row & 1 == 1 {
                    out |= 1 << row;
                }
            }
            out & mask
        })
        .collect()
}

fn permutations(idx: &mut Vec<usize>, start: usize, out: &mut Vec<Vec<usize>>) {
    if start == idx.len() {
        out.push(idx.clone());
        return;
    }
    for i in start..idx.len() {
        idx.swap(start, i);
        permutations(idx, start + 1, out);
        idx.swap(start, i);
    }
}

/// Enumerates up to [`CUTS_PER_NODE`] cuts of width ≤ [`MAX_PINS`] for a
/// gate, including the unit cut (first).
fn enumerate_cuts(
    subject: &Netlist,
    g: SignalId,
    cutsets: &HashMap<SignalId, Vec<Cut>>,
) -> Vec<Cut> {
    let unit = Cut { leaves: vec![g], table: 0b10 };
    let mut cuts: Vec<Cut> = vec![unit];
    let NodeKind::Gate(kind) = subject.kind(g) else { unreachable!() };
    let fanins = subject.fanins(g);
    let child_cuts = |s: SignalId| -> Vec<Cut> {
        match cutsets.get(&s) {
            Some(cs) => cs.clone(),
            // Leaves (inputs/latches/constants) expose only their unit cut.
            None => vec![Cut { leaves: vec![s], table: 0b10 }],
        }
    };
    match kind {
        GateKind::Not => {
            for c in child_cuts(fanins[0]) {
                let mask = table_mask(c.leaves.len());
                cuts.push(Cut { leaves: c.leaves, table: !c.table & mask });
            }
        }
        GateKind::And => {
            for ca in child_cuts(fanins[0]) {
                for cb in child_cuts(fanins[1]) {
                    if let Some(cut) = merge_cuts(&ca, &cb) {
                        cuts.push(cut);
                    }
                }
            }
        }
        other => unreachable!("subject graph contains {other}"),
    }
    // Prune: dedupe by leaf set (keep first = widest table source),
    // prefer smaller cuts.
    cuts[1..].sort_by_key(|c| c.leaves.len());
    let mut seen: Vec<Vec<SignalId>> = Vec::new();
    let mut out: Vec<Cut> = Vec::new();
    for c in cuts {
        if seen.contains(&c.leaves) {
            continue;
        }
        seen.push(c.leaves.clone());
        out.push(c);
        if out.len() >= CUTS_PER_NODE {
            break;
        }
    }
    out
}

/// Merges two child cuts under an AND node; `None` if the union exceeds
/// [`MAX_PINS`] leaves.
fn merge_cuts(a: &Cut, b: &Cut) -> Option<Cut> {
    let mut leaves: Vec<SignalId> = a.leaves.clone();
    for &l in &b.leaves {
        if !leaves.contains(&l) {
            leaves.push(l);
        }
    }
    if leaves.len() > MAX_PINS {
        return None;
    }
    leaves.sort_unstable();
    let expand = |cut: &Cut| -> u16 {
        // Re-express cut.table over the merged leaf vector.
        let position: Vec<usize> = cut
            .leaves
            .iter()
            .map(|l| leaves.iter().position(|x| x == l).expect("leaf in union"))
            .collect();
        let mut out = 0u16;
        for row in 0..1u16 << leaves.len() {
            let mut src_row = 0u16;
            for (src_bit, &pos) in position.iter().enumerate() {
                if row >> pos & 1 == 1 {
                    src_row |= 1 << src_bit;
                }
            }
            if cut.table >> src_row & 1 == 1 {
                out |= 1 << row;
            }
        }
        out
    };
    let table = expand(a) & expand(b);
    Some(Cut { leaves, table })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::Netlist;

    fn lib() -> Library {
        Library::mcnc_like()
    }

    #[test]
    fn maps_single_and() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate("f", GateKind::And, vec![a, b]);
        n.add_output("f", f);
        let mapped = map(&n, &lib(), MapMode::Area);
        assert_eq!(mapped.cells, 1);
        // Cheapest cover of a single AND2 in this library: the and2 cell
        // (area 3) beats nand2+inv (area 3) only on cell count — either
        // way area is 3.
        assert!((mapped.area - 3.0).abs() < 1e-9, "area {}", mapped.area);
    }

    #[test]
    fn maps_inverter_chain() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let x = n.add_gate("x", GateKind::Not, vec![a]);
        let y = n.add_gate("y", GateKind::Not, vec![x]);
        n.add_output("y", y);
        let mapped = map(&n, &lib(), MapMode::Area);
        // Double inversion hash-conses away in the subject graph: y = a.
        assert_eq!(mapped.cells, 0);
        assert!(mapped.area < 1e-9);
    }

    #[test]
    fn nand_cover_beats_and_inv_tree() {
        // f = !(abcd): one nand4 (area 4) vs 3 AND2 + INV (area 10).
        let mut n = Netlist::new("t");
        let ins: Vec<SignalId> = (0..4).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate("g", GateKind::Nand, ins);
        n.add_output("g", g);
        let mapped = map(&n, &lib(), MapMode::Area);
        assert!((mapped.area - 4.0).abs() < 1e-9, "area {}", mapped.area);
        assert_eq!(mapped.cells, 1);
        assert_eq!(mapped.cell_histogram, vec![("nand4".to_string(), 1)]);
    }

    #[test]
    fn xor_uses_xor_cell() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate("f", GateKind::Xor, vec![a, b]);
        n.add_output("f", f);
        let mapped = map(&n, &lib(), MapMode::Area);
        assert_eq!(mapped.cell_histogram, vec![("xor2".to_string(), 1)]);
        assert!((mapped.area - 5.0).abs() < 1e-9);
    }

    #[test]
    fn aoi_pattern_matched() {
        // f = !(ab + c) is one aoi21 (area 3).
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate("ab", GateKind::And, vec![a, b]);
        let or = n.add_gate("or", GateKind::Or, vec![ab, c]);
        let f = n.add_gate("f", GateKind::Not, vec![or]);
        n.add_output("f", f);
        let mapped = map(&n, &lib(), MapMode::Area);
        assert!((mapped.area - 3.0).abs() < 1e-9, "got {:?}", mapped.cell_histogram);
    }

    #[test]
    fn delay_mode_not_worse_on_depth() {
        let mut n = Netlist::new("t");
        let ins: Vec<SignalId> = (0..8).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate("g", GateKind::And, ins);
        n.add_output("g", g);
        let area_mapped = map(&n, &lib(), MapMode::Area);
        let delay_mapped = map(&n, &lib(), MapMode::Delay);
        assert!(delay_mapped.delay <= area_mapped.delay + 1e-9);
        assert!(area_mapped.area <= delay_mapped.area + 1e-9);
    }

    #[test]
    fn shared_logic_counted_once() {
        // Two outputs reading the same AND: one cell, not two.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate("f", GateKind::And, vec![a, b]);
        n.add_output("o1", f);
        n.add_output("o2", f);
        let mapped = map(&n, &lib(), MapMode::Area);
        assert_eq!(mapped.cells, 1);
    }

    #[test]
    fn sequential_designs_map_latch_cones() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_latch("q", false);
        let d = n.add_gate("d", GateKind::Xor, vec![a, q]);
        n.set_latch_next(q, d);
        n.add_output("o", q);
        let mapped = map(&n, &lib(), MapMode::Area);
        assert_eq!(mapped.cell_histogram, vec![("xor2".to_string(), 1)]);
    }
}
