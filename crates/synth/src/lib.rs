//! Sequential synthesis flow and technology mapping for the `symbi`
//! suite: the paper's Algorithm 1 (§3.5.3) plus the infrastructure its
//! Table 3.2 evaluation needs.
//!
//! - [`flow`]: the logic-optimization loop — partitioned reachability,
//!   selective collapse, unreachable-state don't cares, recursive
//!   symbolic bi-decomposition, structure-sharing re-emission,
//! - [`share`]: the hash-consing tree emitter behind Figure 3.2's logic
//!   reuse,
//! - [`genlib`]: a `genlib` parser and the embedded mcnc-like cell
//!   library,
//! - [`map`]: a cut-based technology mapper reporting area and
//!   load-dependent delay.
//!
//! # Example
//!
//! ```
//! use symbi_netlist::{GateKind, Netlist};
//! use symbi_synth::flow::{optimize, SynthesisOptions};
//! use symbi_synth::genlib::Library;
//! use symbi_synth::map::{map, MapMode};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let q = n.add_latch("q", false);
//! let d = n.add_gate("d", GateKind::Xor, vec![a, q]);
//! n.set_latch_next(q, d);
//! n.add_output("o", d);
//!
//! let (optimized, report) = optimize(&n, &SynthesisOptions::default());
//! assert!(report.candidates > 0);
//! let mapped = map(&optimized, &Library::mcnc_like(), MapMode::Area);
//! assert!(mapped.area > 0.0);
//! ```

pub mod flow;
pub mod genlib;
pub mod map;
pub mod parallel;
pub mod share;
