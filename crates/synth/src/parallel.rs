//! Parallel candidate-cone bi-decomposition for [`crate::flow::optimize`].
//!
//! Algorithm 1's loop body is data-parallel: each candidate cone is
//! collapsed, widened by don't cares, and bi-decomposed independently —
//! only the *bookkeeping* (cut points, acceptance, emission) is
//! sequential. This module splits the loop into three phases:
//!
//! 1. **Prepass** (sequential, cheap): replay the candidate walk without
//!    building any BDDs, recording for every candidate its support, its
//!    eligibility, and how many earlier gate candidates had already
//!    become cut points at its turn (`cuts_prefix`).
//! 2. **Decompose** (parallel): every eligible candidate runs
//!    hermetically on a worker with a *private* [`Manager`] that
//!    replays the exact variable layout of the sequential flow — the
//!    DFS leaf order followed by the first `cuts_prefix` cut variables.
//!    Decomposition is a pure function of the canonical cone function,
//!    the variable order, and the options, so the worker returns the
//!    same [`Tree`] the sequential pass would have produced. The shared
//!    reachability analysis is read concurrently through
//!    [`Reachability::try_care_set_shared`], and one flow [`ResourceGovernor`]
//!    budgets and cancels all workers.
//! 3. **Merge** (sequential, canonical order): walk the candidates in the
//!    original order, applying the precomputed results through the same
//!    accept/reject logic and [`TreeEmitter`] calls as the sequential
//!    loop.
//!
//! Because trees, acceptance decisions, and emitter calls all match the
//! sequential pass, the output netlist and report are **byte-identical**
//! for every `jobs` value under the default unlimited budget. A finite
//! budget races between workers (and hermetic cone rebuilds are charged
//! steps the sequential extractor cache amortizes away), so budgeted
//! parallel runs remain sound and correct but may degrade different
//! candidates than a sequential run would.

use crate::flow::{local_support, mffc_cost, run_validation, SynthesisOptions, SynthesisReport};
use crate::share::TreeEmitter;
use std::collections::{HashMap, HashSet};
use symbi_bdd::par::{effective_jobs, parallel_map_isolated, TaskPanic};
use symbi_bdd::{FaultSite, Manager, ResourceExhausted, ResourceGovernor, VarId};
use symbi_core::{recursive, Interval};
use symbi_core::recursive::Tree;
use symbi_netlist::clean::clean;
use symbi_netlist::cone::{dfs_leaf_order, ConeExtractor};
use symbi_netlist::{Netlist, NodeKind, SignalId};
use symbi_reach::{Reachability, ReachabilityOptions};

/// One candidate's bookkeeping from the prepass.
struct Task {
    signal: SignalId,
    /// Candidate already seen earlier in the walk (counted, then skipped).
    dup: bool,
    /// Narrow enough to collapse, and a gate or latch.
    eligible: bool,
    is_gate: bool,
    /// Combinational support at this candidate's turn (leaves = inputs,
    /// latches, and the cut points of all earlier candidates).
    support: Vec<SignalId>,
    /// Number of gate candidates processed before this one — i.e. how
    /// many cut variables its worker must replay on top of the DFS
    /// layout.
    cuts_prefix: usize,
}

/// The worker's verdict for one eligible candidate.
type Decomposition = Result<(Tree, recursive::Stats, usize), ResourceExhausted>;

/// Parallel [`crate::flow::optimize_governed`]. Called by the flow when
/// `options.jobs > 1`; see the module docs for the phase structure and
/// the determinism contract.
pub(crate) fn optimize_parallel(
    original: &Netlist,
    input: &Netlist,
    options: &SynthesisOptions,
    gov: &ResourceGovernor,
) -> (Netlist, SynthesisReport) {
    let (cleaned, _) = clean(input);
    let mut report = SynthesisReport::default();

    // Reachability first (itself parallel over partitions), shared
    // read-only by every decomposition worker.
    let reach = match options.reach {
        Some(opts) => Reachability::analyze_governed(
            &cleaned,
            ReachabilityOptions { jobs: opts.jobs.max(options.jobs), ..opts },
            gov,
        ),
        None => Reachability::trivial(&cleaned),
    };
    report.log2_states = reach.log2_states();

    // The sequential flow's variable layout, reconstructed without a
    // manager: DFS leaves get variables 0..n in order, and the k-th gate
    // candidate's cut point becomes variable n + k.
    let layout = dfs_leaf_order(&cleaned);
    let var_of_leaf: HashMap<SignalId, VarId> =
        layout.iter().enumerate().map(|(i, &s)| (s, VarId(i as u32))).collect();
    let var_of_latch: HashMap<SignalId, VarId> =
        cleaned.latches().iter().map(|&l| (l, var_of_leaf[&l])).collect();

    // Candidate selection — identical to the sequential pass.
    let mut ref_counts: Vec<usize> = cleaned.fanouts().iter().map(Vec::len).collect();
    for &(_, s) in cleaned.outputs() {
        ref_counts[s.index()] += 1;
    }
    let mut is_root: Vec<bool> = vec![false; cleaned.num_signals()];
    for &l in cleaned.latches() {
        is_root[cleaned.latch_next(l).expect("validated").index()] = true;
    }
    for &(_, s) in cleaned.outputs() {
        is_root[s.index()] = true;
    }
    let topo = cleaned.topo_order().expect("validated");
    let mut candidates: Vec<SignalId> = topo
        .iter()
        .copied()
        .filter(|&g| is_root[g.index()] || ref_counts[g.index()] >= 2)
        .collect();
    for s in cleaned.signals() {
        if is_root[s.index()] && !matches!(cleaned.kind(s), NodeKind::Gate(_)) {
            candidates.push(s);
        }
    }

    // Phase 1: prepass. Replays the sequential walk's boundary evolution
    // (every processed gate candidate becomes a cut point, wide or not)
    // to pin down each candidate's support and variable universe.
    let mut boundaries: HashMap<SignalId, VarId> = var_of_leaf.clone();
    let mut cut_points: Vec<SignalId> = Vec::new();
    let mut seen: HashSet<SignalId> = HashSet::new();
    let mut tasks: Vec<Task> = Vec::with_capacity(candidates.len());
    for &signal in &candidates {
        if !seen.insert(signal) {
            tasks.push(Task {
                signal,
                dup: true,
                eligible: false,
                is_gate: false,
                support: Vec::new(),
                cuts_prefix: 0,
            });
            continue;
        }
        let support = local_support(&cleaned, signal, &boundaries);
        let is_gate = matches!(cleaned.kind(signal), NodeKind::Gate(_));
        let eligible = support.len() <= options.max_cone_support
            && matches!(cleaned.kind(signal), NodeKind::Gate(_) | NodeKind::Latch { .. });
        tasks.push(Task {
            signal,
            dup: false,
            eligible,
            is_gate,
            support,
            cuts_prefix: cut_points.len(),
        });
        if is_gate {
            boundaries.insert(signal, VarId((layout.len() + cut_points.len()) as u32));
            cut_points.push(signal);
        }
    }

    // Phase 2: hermetic decomposition of every eligible candidate. On
    // small workloads the thread pool costs more than it recovers, so
    // the cutoff drops to the inline path — results are identical
    // either way (the map is deterministic across worker counts). Each
    // task is a panic-isolation boundary: one crashed worker surfaces as
    // a `TaskPanic` for its own candidate while every sibling completes.
    let work: Vec<usize> =
        tasks.iter().enumerate().filter(|(_, t)| t.eligible).map(|(i, _)| i).collect();
    let jobs = effective_jobs(options.jobs, work.len());
    let decomposed: Vec<Result<Decomposition, TaskPanic>> =
        parallel_map_isolated(jobs, work.clone(), |wi, ti| {
            let t = &tasks[ti];
            // The `par.task` fault site is matched on the work-item
            // ordinal, not arrival order, so injection is deterministic
            // under any worker count.
            gov.fault_site_at(FaultSite::ParTask, wi as u64)?;
            decompose_candidate(&cleaned, t, &cut_points, &reach, &var_of_latch, options, gov)
        });
    let mut results: Vec<Option<Result<Decomposition, TaskPanic>>> =
        (0..tasks.len()).map(|_| None).collect();
    for (ti, r) in work.into_iter().zip(decomposed) {
        results[ti] = Some(r);
    }

    // Phase 3: merge in candidate order — the same bookkeeping, counter
    // updates, and emitter calls as the sequential loop.
    let mut emitter = TreeEmitter::new(&cleaned);
    let mut rebuilt: HashMap<SignalId, SignalId> = HashMap::new();
    let mut var_to_leaf: HashMap<VarId, SignalId> =
        var_of_leaf.iter().map(|(&s, &v)| (v, s)).collect();
    let mut boundaries: HashMap<SignalId, VarId> = var_of_leaf;
    let mut cuts_done = 0usize;
    for (ti, task) in tasks.iter().enumerate() {
        report.candidates += 1;
        if task.dup {
            continue;
        }
        report.eligible += usize::from(task.eligible);
        let signal = task.signal;
        let new_sig = if task.eligible {
            match results[ti].take().expect("eligible task was decomposed") {
                Ok(Ok((tree, stats, dropped))) => {
                    report.decomposed += 1;
                    report.steps.or_steps += stats.or_steps;
                    report.steps.and_steps += stats.and_steps;
                    report.steps.xor_steps += stats.xor_steps;
                    report.steps.shannon_steps += stats.shannon_steps;
                    report.steps.vars_abstracted += stats.vars_abstracted;
                    report.steps.budget_exhausted_ops += stats.budget_exhausted_ops;
                    report.steps.fallbacks_taken += stats.fallbacks_taken;
                    report.steps.rescued_checks += stats.rescued_checks;
                    report.steps.portfolio.absorb(&stats.portfolio);
                    report.budget_exhausted_ops += stats.budget_exhausted_ops + dropped;
                    report.fallbacks_taken += stats.fallbacks_taken;
                    if options.accept_only_improvements
                        && tree.aig_cost() > mffc_cost(&cleaned, signal, &ref_counts, &boundaries)
                    {
                        report.rejected += 1;
                        emitter.copy_cone(&cleaned, signal)
                    } else {
                        emitter.emit(&tree, &var_to_leaf)
                    }
                }
                Ok(Err(_)) => {
                    report.candidates_skipped += 1;
                    report.budget_exhausted_ops += 1;
                    emitter.copy_cone(&cleaned, signal)
                }
                Err(TaskPanic { .. }) => {
                    report.worker_panics += 1;
                    report.candidates_skipped += 1;
                    emitter.copy_cone(&cleaned, signal)
                }
            }
        } else {
            report.skipped_wide += usize::from(task.is_gate);
            emitter.copy_cone(&cleaned, signal)
        };
        rebuilt.insert(signal, new_sig);
        if task.is_gate {
            let v = VarId((layout.len() + cuts_done) as u32);
            cuts_done += 1;
            boundaries.insert(signal, v);
            var_to_leaf.insert(v, signal);
            emitter.set_redirect(signal, new_sig);
        }
    }
    report.sharing_hits = emitter.sharing_hits();

    // Wire latches and outputs in the rebuilt netlist.
    let mut out = emitter.into_netlist();
    for &l in cleaned.latches() {
        let next = cleaned.latch_next(l).expect("validated");
        let new_latch = out.signal(cleaned.signal_name(l)).expect("latch copied");
        out.set_latch_next(new_latch, rebuilt[&next]);
    }
    for (name, sig) in cleaned.outputs() {
        out.add_output(name.clone(), rebuilt[sig]);
    }
    let (final_netlist, _) = clean(&out);
    run_validation(original, &final_netlist, options, gov, &mut report);
    (final_netlist, report)
}

/// Runs one candidate hermetically: a fresh manager replays the
/// sequential variable layout (DFS leaves, then the candidate's cut
/// prefix), the cone is collapsed, widened by the shared reachability
/// don't cares, and bi-decomposed under a freshly forked candidate
/// budget. Everything here is a pure function of the inputs, so the
/// returned tree is the one the sequential pass produces.
fn decompose_candidate(
    cleaned: &Netlist,
    task: &Task,
    cut_points: &[SignalId],
    reach: &Reachability,
    var_of_latch: &HashMap<SignalId, VarId>,
    options: &SynthesisOptions,
    gov: &ResourceGovernor,
) -> Decomposition {
    let mut m = Manager::with_kernel_config(options.kernel);
    let mut extractor = ConeExtractor::with_dfs_layout(cleaned, &mut m);
    for &cut in &cut_points[..task.cuts_prefix] {
        let v = VarId(m.num_vars() as u32);
        m.new_var();
        extractor.add_leaf(&mut m, cut, v);
    }
    let cand_gov = gov.fork_steps(options.budget.candidate_steps);
    let f = extractor.try_bdd(&mut m, task.signal, &cand_gov)?;
    let ps: Vec<SignalId> = task
        .support
        .iter()
        .copied()
        .filter(|s| matches!(cleaned.kind(*s), NodeKind::Latch { .. }))
        .collect();
    let (care, dropped) = reach.try_care_set_shared(&ps, &mut m, var_of_latch, &cand_gov);
    let unreachable = m.try_not(care, &cand_gov)?;
    let interval = Interval::try_with_dontcare(&mut m, f, unreachable, &cand_gov)?;
    let (tree, stats) = recursive::try_decompose(&mut m, &interval, &options.decompose, &cand_gov)?;
    Ok((tree, stats, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::optimize;
    use symbi_netlist::sim::random_co_simulation;
    use symbi_netlist::GateKind;

    /// One-hot ring with output logic that exploits unreachable states —
    /// same circuit as the sequential flow tests, so both paths face
    /// identical candidates, don't cares, and sharing opportunities.
    fn ring_with_logic() -> Netlist {
        let mut n = Netlist::new("ring");
        let en = n.add_input("en");
        let q: Vec<SignalId> = (0..4).map(|i| n.add_latch(format!("q{i}"), i == 0)).collect();
        let nen = n.add_gate("nen", GateKind::Not, vec![en]);
        for i in 0..4 {
            let sh = n.add_gate(format!("sh{i}"), GateKind::And, vec![en, q[(i + 3) % 4]]);
            let ho = n.add_gate(format!("ho{i}"), GateKind::And, vec![nen, q[i]]);
            let nx = n.add_gate(format!("nx{i}"), GateKind::Or, vec![sh, ho]);
            n.set_latch_next(q[i], nx);
        }
        let x01 = n.add_gate("x01", GateKind::Xor, vec![q[0], q[1]]);
        let both = n.add_gate("both", GateKind::And, vec![q[0], q[1]]);
        let nboth = n.add_gate("nboth", GateKind::Not, vec![both]);
        let o = n.add_gate("o", GateKind::And, vec![x01, nboth]);
        n.add_output("one_hot01", o);
        n
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let n = ring_with_logic();
        for reach in [Some(ReachabilityOptions::default()), None] {
            let seq_opts = SynthesisOptions { reach, jobs: 1, ..Default::default() };
            let par_opts = SynthesisOptions { reach, jobs: 4, ..Default::default() };
            let (seq_net, seq_rep) = optimize(&n, &seq_opts);
            let (par_net, par_rep) = optimize(&n, &par_opts);
            assert_eq!(
                symbi_netlist::bench::write(&seq_net),
                symbi_netlist::bench::write(&par_net),
                "jobs=4 netlist must be byte-identical to jobs=1 (reach={:?})",
                reach.is_some()
            );
            assert_eq!(seq_rep, par_rep, "reports must agree field-for-field");
        }
    }

    #[test]
    fn parallel_flow_preserves_reachable_behaviour() {
        let n = ring_with_logic();
        let opts = SynthesisOptions { jobs: 8, ..Default::default() };
        let (opt, report) = optimize(&n, &opts);
        assert!(report.decomposed > 0);
        assert!(random_co_simulation(&n, &opt, 40, 77));
    }

    #[test]
    fn worker_panic_degrades_exactly_one_cone() {
        use crate::flow::optimize_governed;
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};

        let n = ring_with_logic();
        let opts = SynthesisOptions { jobs: 2, ..Default::default() };

        let (clean_net, clean_rep) = optimize_governed(&n, &opts, &opts.budget.governor());

        // A worker panic at the first `par.task` crossing and a budget
        // fault at the same cell must degrade the *same single cone*:
        // byte-identical outputs prove the blast radius of a crash is
        // exactly one candidate, with every sibling unaffected.
        let panic_plan = Arc::new(
            FaultPlan::new(11).with_rule(FaultSite::ParTask, 1, FaultKind::Panic),
        );
        let panic_gov = opts.budget.governor().with_fault_plan(panic_plan);
        let (panic_net, panic_rep) = optimize_governed(&n, &opts, &panic_gov);

        let budget_plan = Arc::new(
            FaultPlan::new(11).with_rule(FaultSite::ParTask, 1, FaultKind::Budget),
        );
        let budget_gov = opts.budget.governor().with_fault_plan(budget_plan);
        let (budget_net, budget_rep) = optimize_governed(&n, &opts, &budget_gov);

        assert_eq!(
            symbi_netlist::bench::write(&panic_net),
            symbi_netlist::bench::write(&budget_net),
            "panic and budget faults at the same cell must degrade identically"
        );
        assert_eq!(panic_rep.worker_panics, 1);
        assert_eq!(panic_rep.candidates_skipped, 1);
        assert_eq!(budget_rep.worker_panics, 0);
        assert_eq!(budget_rep.candidates_skipped, 1);
        assert_eq!(
            panic_rep.decomposed,
            clean_rep.decomposed - 1,
            "exactly one cone lost its decomposition"
        );
        // The degraded output still behaves like the input. (The kept
        // cone may happen to match its rewrite structurally, so the
        // clean/panic netlists are not required to differ — the
        // panic/budget identity above is the blast-radius proof.)
        assert!(random_co_simulation(&n, &panic_net, 40, 99));
        let _ = clean_net;
    }

    #[test]
    fn later_par_task_panic_leaves_earlier_cones_byte_identical() {
        use crate::flow::optimize_governed;
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};

        let n = ring_with_logic();
        let opts = SynthesisOptions { jobs: 2, ..Default::default() };
        for occurrence in [2u64, 3] {
            let plan = Arc::new(
                FaultPlan::new(5).with_rule(FaultSite::ParTask, occurrence, FaultKind::Panic),
            );
            let gov = opts.budget.governor().with_fault_plan(plan);
            let (net, rep) = optimize_governed(&n, &opts, &gov);
            assert_eq!(rep.worker_panics, 1, "occurrence {occurrence}");
            assert!(random_co_simulation(&n, &net, 40, occurrence));
            // Replays are deterministic: same plan, same output.
            let replay_plan = Arc::new(
                FaultPlan::new(5).with_rule(FaultSite::ParTask, occurrence, FaultKind::Panic),
            );
            let replay_gov = opts.budget.governor().with_fault_plan(replay_plan);
            let (net2, rep2) = optimize_governed(&n, &opts, &replay_gov);
            assert_eq!(
                symbi_netlist::bench::write(&net),
                symbi_netlist::bench::write(&net2)
            );
            assert_eq!(rep, rep2);
        }
    }

    #[test]
    fn budgeted_parallel_flow_degrades_but_stays_correct() {
        let n = ring_with_logic();
        let opts = SynthesisOptions {
            budget: crate::flow::BudgetOptions {
                candidate_steps: 16,
                ..Default::default()
            },
            jobs: 4,
            validate_frames: Some(8),
            ..Default::default()
        };
        let (_, report) = optimize(&n, &opts);
        let v = report.sat_validation.expect("validation requested");
        assert!(v.equivalent, "budgeted parallel runs may skip candidates, never break them");
    }
}
