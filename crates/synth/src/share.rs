//! Structure-sharing emission of decomposition trees (Figure 3.2).
//!
//! The paper selects partitions that "re-use logic … present in the
//! network but not in the fanin of f". [`TreeEmitter`] realizes the same
//! effect constructively: every 2-input primitive emitted by any
//! decomposition is hash-consed, so when a later cone derives a `g1` that
//! already exists, it is shared rather than duplicated — and the hit is
//! counted.

use std::collections::HashMap;
use symbi_bdd::VarId;
use symbi_core::recursive::Tree;
use symbi_core::DecKind;
use symbi_netlist::{GateKind, Netlist, NodeKind, SignalId};

/// Emits [`Tree`]s into a netlist with global structural hashing.
#[derive(Debug)]
pub struct TreeEmitter {
    out: Netlist,
    /// Source leaf (input/latch) → new signal.
    leaf_map: HashMap<SignalId, SignalId>,
    gate_hash: HashMap<(GateKind, SignalId, SignalId), SignalId>,
    not_hash: HashMap<SignalId, SignalId>,
    const_sigs: [Option<SignalId>; 2],
    copied: HashMap<SignalId, SignalId>,
    /// Source signals redirected to an already-rebuilt implementation
    /// (cut points of the synthesis flow).
    redirect: HashMap<SignalId, SignalId>,
    hits: usize,
}

impl TreeEmitter {
    /// Creates an emitter whose netlist shares `src`'s interface: same
    /// inputs and latches (latches still unwired), same names.
    pub fn new(src: &Netlist) -> Self {
        let mut out = Netlist::new(src.name());
        let mut leaf_map = HashMap::new();
        for &i in src.inputs() {
            leaf_map.insert(i, out.add_input(src.signal_name(i).to_string()));
        }
        for &l in src.latches() {
            leaf_map.insert(l, out.add_latch(src.signal_name(l).to_string(), src.latch_init(l)));
        }
        TreeEmitter {
            out,
            leaf_map,
            gate_hash: HashMap::new(),
            not_hash: HashMap::new(),
            const_sigs: [None, None],
            copied: HashMap::new(),
            redirect: HashMap::new(),
            hits: 0,
        }
    }

    /// Declares that source signal `src` is implemented by `replacement`
    /// in the rebuilt netlist; [`TreeEmitter::emit`] literals and
    /// [`TreeEmitter::copy_cone`] walks will use it from now on.
    pub fn set_redirect(&mut self, src: SignalId, replacement: SignalId) {
        self.redirect.insert(src, replacement);
    }

    /// Number of times an emitted node was already present (shared).
    pub fn sharing_hits(&self) -> usize {
        self.hits
    }

    /// Finishes and returns the netlist (latches still need wiring).
    pub fn into_netlist(self) -> Netlist {
        self.out
    }

    fn constant(&mut self, value: bool) -> SignalId {
        if let Some(s) = self.const_sigs[usize::from(value)] {
            return s;
        }
        let name = self.out.fresh_name(if value { "const1_" } else { "const0_" });
        let s = self.out.add_const(name, value);
        self.const_sigs[usize::from(value)] = Some(s);
        s
    }

    fn invert(&mut self, a: SignalId) -> SignalId {
        if let Some(&x) = self.not_hash.get(&a) {
            self.hits += 1;
            return x;
        }
        let name = self.out.fresh_name("n");
        let x = self.out.add_gate(name, GateKind::Not, vec![a]);
        self.not_hash.insert(a, x);
        self.not_hash.insert(x, a);
        x
    }

    fn gate2(&mut self, kind: GateKind, a: SignalId, b: SignalId) -> SignalId {
        if a == b {
            return match kind {
                GateKind::And | GateKind::Or => a,
                GateKind::Xor => self.constant(false),
                _ => unreachable!("emitter only builds AND/OR/XOR"),
            };
        }
        let key = if a <= b { (kind, a, b) } else { (kind, b, a) };
        if let Some(&x) = self.gate_hash.get(&key) {
            self.hits += 1;
            return x;
        }
        let name = self.out.fresh_name("g");
        let x = self.out.add_gate(name, kind, vec![key.1, key.2]);
        self.gate_hash.insert(key, x);
        x
    }

    /// Emits a decomposition tree; `var_to_leaf` maps BDD variables back
    /// to the source netlist's leaf signals.
    ///
    /// # Panics
    ///
    /// Panics if the tree mentions a variable with no leaf mapping.
    pub fn emit(&mut self, tree: &Tree, var_to_leaf: &HashMap<VarId, SignalId>) -> SignalId {
        match tree {
            Tree::Const(b) => self.constant(*b),
            Tree::Literal(v, phase) => {
                let src_leaf = *var_to_leaf
                    .get(v)
                    .unwrap_or_else(|| panic!("no leaf mapped to variable {v}"));
                let leaf = self
                    .redirect
                    .get(&src_leaf)
                    .or_else(|| self.leaf_map.get(&src_leaf))
                    .copied()
                    .unwrap_or_else(|| panic!("variable {v} maps to an unbuilt signal"));
                if *phase {
                    leaf
                } else {
                    self.invert(leaf)
                }
            }
            Tree::Op(kind, a, b) => {
                let ea = self.emit(a, var_to_leaf);
                let eb = self.emit(b, var_to_leaf);
                let gk = match kind {
                    DecKind::Or => GateKind::Or,
                    DecKind::And => GateKind::And,
                    DecKind::Xor => GateKind::Xor,
                };
                self.gate2(gk, ea, eb)
            }
        }
    }

    /// Deep-copies the combinational cone of `signal` from `src` (used for
    /// cones too wide to collapse). Gates are memoized so overlapping
    /// copied cones share structure.
    pub fn copy_cone(&mut self, src: &Netlist, signal: SignalId) -> SignalId {
        if let Some(&s) = self.redirect.get(&signal) {
            return s;
        }
        if let Some(&s) = self.copied.get(&signal) {
            return s;
        }
        if let Some(&leaf) = self.leaf_map.get(&signal) {
            return leaf;
        }
        let new_sig = match src.kind(signal) {
            NodeKind::Const(b) => self.constant(b),
            NodeKind::Gate(kind) => {
                let fanins: Vec<SignalId> =
                    src.fanins(signal).iter().map(|&f| self.copy_cone(src, f)).collect();
                match (kind, fanins.len()) {
                    (GateKind::Not, _) => self.invert(fanins[0]),
                    (GateKind::Buf, _) => fanins[0],
                    (GateKind::And | GateKind::Or | GateKind::Xor, 2) => {
                        self.gate2(kind, fanins[0], fanins[1])
                    }
                    _ => {
                        let name = self.out.fresh_name("c");
                        self.out.add_gate(name, kind, fanins)
                    }
                }
            }
            NodeKind::Input | NodeKind::Latch { .. } => {
                unreachable!("leaves handled through leaf_map")
            }
        };
        self.copied.insert(signal, new_sig);
        new_sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_bdd::Manager;
    use symbi_core::recursive::Tree;

    fn setup() -> (Netlist, TreeEmitter, HashMap<VarId, SignalId>) {
        let mut src = Netlist::new("t");
        let a = src.add_input("a");
        let b = src.add_input("b");
        let q = src.add_latch("q", false);
        let d = src.add_gate("d", GateKind::Xor, vec![a, q]);
        src.set_latch_next(q, d);
        src.add_output("o", d);
        let emitter = TreeEmitter::new(&src);
        let var_to_leaf: HashMap<VarId, SignalId> =
            [(VarId(0), a), (VarId(1), b), (VarId(2), q)].into_iter().collect();
        (src, emitter, var_to_leaf)
    }

    #[test]
    fn emit_shares_identical_subtrees() {
        let (_, mut emitter, map) = setup();
        let subtree = || {
            Tree::Op(
                DecKind::And,
                Box::new(Tree::Literal(VarId(0), true)),
                Box::new(Tree::Literal(VarId(1), true)),
            )
        };
        let t1 = Tree::Op(DecKind::Or, Box::new(subtree()), Box::new(Tree::Literal(VarId(2), true)));
        let t2 = Tree::Op(DecKind::Xor, Box::new(subtree()), Box::new(Tree::Literal(VarId(1), false)));
        let s1 = emitter.emit(&t1, &map);
        let s2 = emitter.emit(&t2, &map);
        assert_ne!(s1, s2);
        assert!(emitter.sharing_hits() >= 1, "the AND(a,b) must be reused");
    }

    #[test]
    fn emit_respects_commutativity() {
        let (_, mut emitter, map) = setup();
        let t1 = Tree::Op(
            DecKind::And,
            Box::new(Tree::Literal(VarId(0), true)),
            Box::new(Tree::Literal(VarId(1), true)),
        );
        let t2 = Tree::Op(
            DecKind::And,
            Box::new(Tree::Literal(VarId(1), true)),
            Box::new(Tree::Literal(VarId(0), true)),
        );
        let s1 = emitter.emit(&t1, &map);
        let s2 = emitter.emit(&t2, &map);
        assert_eq!(s1, s2);
    }

    #[test]
    fn copy_cone_memoizes() {
        let (src, mut emitter, _) = setup();
        let d = src.signal("d").unwrap();
        let c1 = emitter.copy_cone(&src, d);
        let c2 = emitter.copy_cone(&src, d);
        assert_eq!(c1, c2);
    }

    #[test]
    fn constants_are_unique() {
        let (_, mut emitter, map) = setup();
        let s1 = emitter.emit(&Tree::Const(true), &map);
        let s2 = emitter.emit(&Tree::Const(true), &map);
        assert_eq!(s1, s2);
        let s3 = emitter.emit(&Tree::Const(false), &map);
        assert_ne!(s1, s3);
    }

    #[test]
    fn emitted_tree_function_is_correct() {
        // Emit OR(AND(a, !q), q) and verify by simulation against BDD.
        let (_src, mut emitter, map) = setup();
        let tree = Tree::Op(
            DecKind::Or,
            Box::new(Tree::Op(
                DecKind::And,
                Box::new(Tree::Literal(VarId(0), true)),
                Box::new(Tree::Literal(VarId(2), false)),
            )),
            Box::new(Tree::Literal(VarId(2), true)),
        );
        let root = emitter.emit(&tree, &map);
        let mut out = emitter.into_netlist();
        // Wire the latch trivially and expose the root.
        let q_new = out.signal("q").unwrap();
        out.set_latch_next(q_new, q_new);
        out.add_output("root", root);
        let mut m = Manager::with_vars(3);
        let f = tree.to_bdd(&mut m);
        let mut sim = symbi_netlist::sim::Simulator::new(&out);
        for bits in 0..8u64 {
            let a = bits & 1;
            let b = bits >> 1 & 1;
            let q = bits >> 2 & 1;
            sim.set_state(&[q.wrapping_neg()]);
            let got = sim.eval_comb(&[a.wrapping_neg(), b.wrapping_neg()])[0] & 1 == 1;
            let expect = m.eval(f, &[a == 1, b == 1, q == 1]);
            assert_eq!(got, expect, "bits {bits:03b}");
        }
    }
}
