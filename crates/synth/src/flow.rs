//! The paper's Algorithm 1 (§3.5.3): the logic-optimization loop.
//!
//! ```text
//! create latch partitions of a design;
//! selectively collapse logic;
//! while (more logic to decompose) do
//!     select a signal and its function f(x);
//!     retrieve unreachable states u(x);
//!     abstract vars from interval [f·ū, f + u];
//!     apply bi-decomposition to interval;
//! end while
//! ```
//!
//! Signals are processed in topological order. Each candidate cone is
//! collapsed to a BDD over its leaves (primary inputs and latch outputs),
//! widened by the unreachable-state don't cares of its present-state
//! support, recursively bi-decomposed into 2-input primitives, and
//! re-emitted through a structure-hashing builder so decompositions share
//! logic across cones (Figure 3.2). Cones too wide to collapse are copied
//! unchanged.

use crate::share::TreeEmitter;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use symbi_bdd::{FaultSite, KernelConfig, Manager, ResourceExhausted, ResourceGovernor, VarId};
use symbi_core::{recursive, Interval};
use symbi_netlist::clean::clean;
use symbi_netlist::cone::ConeExtractor;
use symbi_netlist::sweep::SweepOptions;
use symbi_netlist::{Netlist, NodeKind, SignalId};
use symbi_reach::{Reachability, ReachabilityOptions};
use symbi_sat::SolverStats;

/// Resource budget for one [`optimize`] run. The default is unlimited:
/// the flow behaves exactly as if no governor existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetOptions {
    /// Recursion-step budget granted to *each* candidate cone
    /// (`u64::MAX` = unlimited). A candidate that exhausts it keeps its
    /// original implementation.
    pub candidate_steps: u64,
    /// Live-node ceiling on the flow's BDD managers
    /// (`usize::MAX` = unlimited).
    pub node_limit: usize,
    /// Wall-clock deadline for the whole run. Candidates processed after
    /// it passes keep their original cones.
    pub timeout: Option<Duration>,
}

impl Default for BudgetOptions {
    fn default() -> Self {
        BudgetOptions { candidate_steps: u64::MAX, node_limit: usize::MAX, timeout: None }
    }
}

impl BudgetOptions {
    /// The governor implementing this budget.
    pub fn governor(&self) -> ResourceGovernor {
        let mut gov = ResourceGovernor::unlimited().with_node_limit(self.node_limit);
        if let Some(t) = self.timeout {
            gov = gov.with_timeout(t);
        }
        gov
    }
}

/// Options for [`optimize`].
#[derive(Debug, Clone, Copy)]
pub struct SynthesisOptions {
    /// Reachability configuration; `None` disables state analysis (the
    /// "no states" arm of the experiments).
    pub reach: Option<ReachabilityOptions>,
    /// Recursive bi-decomposition options.
    pub decompose: recursive::Options,
    /// Cones with more leaves than this are copied, not collapsed
    /// (the paper's "selectively collapse logic").
    pub max_cone_support: usize,
    /// Only replace a cone when the decomposition's estimated cost beats
    /// the existing structure (the paper's "assessed impact … over
    /// existing circuit structure"). Disable to force re-implementation.
    pub accept_only_improvements: bool,
    /// Resource budget; candidates that exhaust it degrade gracefully to
    /// their original cones instead of aborting the flow.
    pub budget: BudgetOptions,
    /// When set, the optimized netlist is validated against the input by
    /// SAT-based bounded sequential equivalence over this many frames
    /// (see [`symbi_netlist::sec::bounded_check_sat`]); the verdict and
    /// solver statistics land in [`SynthesisReport::sat_validation`].
    /// `None` (the default) skips validation.
    pub validate_frames: Option<usize>,
    /// Worker threads for candidate-cone bi-decomposition (and, via
    /// [`ReachabilityOptions::jobs`], the reachability partitions). Each
    /// worker owns a private [`Manager`]; results merge in the sequential
    /// candidate order, so under the default unlimited budget the output
    /// netlist and report are byte-identical for every `jobs` value. A
    /// *finite* budget races between workers (and hermetic workers
    /// re-derive cone prefixes the sequential cache amortizes), so
    /// budgeted parallel runs stay correct but may skip different
    /// candidates than sequential ones.
    pub jobs: usize,
    /// Kernel tuning for the flow's BDD managers (the collapse/decompose
    /// manager and each parallel worker's private manager). Setting
    /// [`KernelConfig::shared_workers`] to `2+` turns on the shared-memory
    /// concurrent apply inside each manager; results stay canonical, so
    /// the emitted netlist is unchanged under the default unlimited
    /// budget.
    pub kernel: KernelConfig,
    /// Run the fraig-style SAT-sweeping pre-pass
    /// ([`symbi_netlist::sweep`]) before decomposition: functionally
    /// identical nodes merge so the flow never budgets the same function
    /// twice. Off by default; when off, the output is byte-identical to
    /// flows predating the pass. The sweep runs *before* the parallel
    /// fan-out, so its result is identical for every `jobs` value; a
    /// governor trip or a panic inside the sweep degrades to the
    /// unswept netlist ([`SweepSummary::degraded`]).
    pub sweep: bool,
    /// Refinement rounds of the sweep pre-pass (counterexample replay
    /// cycles). Only read when [`SynthesisOptions::sweep`] is set.
    pub sweep_rounds: usize,
    /// Conflict budget per pairwise sweep SAT query; pairs exhausting it
    /// stay soundly unmerged. Only read when [`SynthesisOptions::sweep`]
    /// is set.
    pub sweep_conflicts: u64,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            reach: Some(ReachabilityOptions::default()),
            decompose: recursive::Options::default(),
            max_cone_support: 20,
            accept_only_improvements: true,
            budget: BudgetOptions::default(),
            validate_frames: None,
            jobs: 1,
            kernel: KernelConfig::default(),
            sweep: false,
            sweep_rounds: SweepOptions::default().rounds,
            sweep_conflicts: SweepOptions::default().conflict_budget,
        }
    }
}

/// What the optional SAT-sweeping pre-pass did (all zero when
/// [`SynthesisOptions::sweep`] is off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Candidate equivalence classes seeded by simulation.
    pub classes: usize,
    /// Node pairs proven equivalent and merged.
    pub merges: usize,
    /// Pairwise SAT queries the persistent sweep solver answered.
    pub sat_calls: usize,
    /// SAT counterexamples replayed as new simulation patterns.
    pub cex_patterns: usize,
    /// Pairs left unmerged because their conflict budget ran out —
    /// the "undecided = unmerged" soundness contract in numbers.
    pub undecided: usize,
    /// The sweep was requested but aborted (resource exhaustion,
    /// cancellation, injected fault, or a panic); the flow continued
    /// on the unswept netlist.
    pub degraded: bool,
}

/// Outcome of the optional post-flow SAT validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatValidationReport {
    /// Frames of bounded unrolling checked.
    pub frames: usize,
    /// Whether the optimized netlist matched the input on every frame.
    /// Don't-care rewrites only change unreachable behaviour, and the
    /// bounded check starts from the initial states, so this must be
    /// `true` for a sound flow.
    pub equivalent: bool,
    /// SAT effort spent on the validation.
    pub solver: SolverStats,
}

/// What [`optimize`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SynthesisReport {
    /// Candidate signals examined (outputs + next-state functions).
    pub candidates: usize,
    /// Distinct candidates narrow enough to collapse (gates and latches
    /// within [`SynthesisOptions::max_cone_support`]). A pure function
    /// of the netlist and options — identical for every `jobs` value —
    /// and the amount of real work the parallel phase dispatches.
    pub eligible: usize,
    /// Cones actually collapsed and re-decomposed.
    pub decomposed: usize,
    /// Cones skipped for excessive support.
    pub skipped_wide: usize,
    /// Decomposed cones rejected because the original structure was
    /// cheaper.
    pub rejected: usize,
    /// Aggregated decomposition step counters.
    pub steps: recursive::Stats,
    /// Tree-emitter sharing hits (Figure 3.2 reuse events).
    pub sharing_hits: usize,
    /// `log2` of the reachable-state estimate (latch count when state
    /// analysis is off).
    pub log2_states: f64,
    /// Candidates whose resource budget ran out before a correct
    /// decomposition existed; their original cones were kept verbatim.
    pub candidates_skipped: usize,
    /// Governed operations that hit a resource limit anywhere in the
    /// flow (decomposer ladder rungs, care-set projections, whole
    /// candidates). Zero under the default unlimited budget.
    pub budget_exhausted_ops: usize,
    /// Degradation-ladder steps the decomposer took after an exhaustion
    /// (symbolic partition search → greedy growth → Shannon).
    pub fallbacks_taken: usize,
    /// Result of the SAT-based bounded equivalence validation, when
    /// [`SynthesisOptions::validate_frames`] was set.
    pub sat_validation: Option<SatValidationReport>,
    /// Candidates whose decomposition attempt *panicked* (a worker crash,
    /// real or injected). Each is isolated at the candidate boundary and
    /// degrades to its original cone, exactly like a budget exhaustion —
    /// one crashed cone never takes down the flow or its siblings.
    pub worker_panics: usize,
    /// Why the requested SAT validation could not finish, if it was
    /// interrupted (cancellation, deadline, or an injected fault in the
    /// validation solver). `sat_validation` is `None` in that case; a
    /// completed validation leaves this `None`.
    pub validation_interrupted: Option<ResourceExhausted>,
    /// Counters of the SAT-sweeping pre-pass
    /// ([`SynthesisOptions::sweep`]); all zero when the pass is off.
    pub sweep: SweepSummary,
}

/// Runs Algorithm 1 on `netlist`, returning the optimized netlist (same
/// interface) and a report.
///
/// # Panics
///
/// Panics if the netlist fails validation.
pub fn optimize(netlist: &Netlist, options: &SynthesisOptions) -> (Netlist, SynthesisReport) {
    optimize_governed(netlist, options, &options.budget.governor())
}

/// [`optimize`] under a caller-supplied governor — use this to share one
/// budget (or one cancellation flag) across several flow invocations.
/// Per-candidate step budgets from [`BudgetOptions::candidate_steps`] are
/// forked off `gov`, so its own step limit, node ceiling, deadline, and
/// cancel flag all still apply.
///
/// # Panics
///
/// Panics if the netlist fails validation.
pub fn optimize_governed(
    netlist: &Netlist,
    options: &SynthesisOptions,
    gov: &ResourceGovernor,
) -> (Netlist, SynthesisReport) {
    // The sweep pre-pass runs once, before the parallel fan-out, so the
    // rest of the flow — sequential or parallel — sees the same input
    // netlist for every `jobs` value. Validation still compares against
    // the caller's original netlist, keeping the sweep inside the
    // verified boundary.
    let (swept, summary) = sweep_prepass(netlist, options, gov);
    let input = swept.as_ref().unwrap_or(netlist);
    let (out, mut report) = if options.jobs > 1 {
        crate::parallel::optimize_parallel(netlist, input, options, gov)
    } else {
        optimize_sequential(netlist, input, options, gov)
    };
    report.sweep = summary;
    (out, report)
}

/// Runs the governed SAT-sweeping pre-pass when enabled. The sweep
/// attempt is a panic-isolation boundary: a crash inside it (including
/// injected `netlist.sweep` panic faults) degrades to the unswept
/// netlist exactly like a resource exhaustion — the flow never dies for
/// an optional pre-pass.
fn sweep_prepass(
    netlist: &Netlist,
    options: &SynthesisOptions,
    gov: &ResourceGovernor,
) -> (Option<Netlist>, SweepSummary) {
    let mut summary = SweepSummary::default();
    if !options.sweep {
        return (None, summary);
    }
    let sweep_opts = SweepOptions {
        rounds: options.sweep_rounds,
        conflict_budget: options.sweep_conflicts,
        ..SweepOptions::default()
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        symbi_netlist::sweep::try_sweep(netlist, &sweep_opts, gov)
    }));
    match attempt {
        Ok(Ok((swept, r))) => {
            summary.classes = r.classes;
            summary.merges = r.merges;
            summary.sat_calls = r.sat_calls;
            summary.cex_patterns = r.cex_patterns;
            summary.undecided = r.undecided;
            (Some(swept), summary)
        }
        Ok(Err(_)) | Err(_) => {
            summary.degraded = true;
            (None, summary)
        }
    }
}

/// The sequential flow body: optimizes `input` (the possibly-swept
/// netlist) while validating against `original`.
fn optimize_sequential(
    original: &Netlist,
    input: &Netlist,
    options: &SynthesisOptions,
    gov: &ResourceGovernor,
) -> (Netlist, SynthesisReport) {
    let (cleaned, _) = clean(input);
    let mut report = SynthesisReport::default();

    // Partitioned reachability (or the trivial no-information analysis).
    let mut reach = match options.reach {
        Some(opts) => Reachability::analyze_governed(&cleaned, opts, gov),
        None => Reachability::trivial(&cleaned),
    };
    report.log2_states = reach.log2_states();

    // One manager for the whole pass: leaves (PIs + latches) get fixed
    // variables up front, ordered by the fanin-DFS heuristic so cone BDDs
    // stay small regardless of declaration order.
    let mut m = Manager::with_kernel_config(options.kernel);
    let mut extractor = ConeExtractor::with_dfs_layout(&cleaned, &mut m);
    let var_of_latch: HashMap<SignalId, VarId> = cleaned
        .latches()
        .iter()
        .map(|&l| (l, extractor.var_of(l).expect("layout covers latches")))
        .collect();
    let var_to_leaf: HashMap<VarId, SignalId> =
        extractor.var_map().iter().map(|(&s, &v)| (v, s)).collect();

    // Reference counts (fanout edges + output references) for the
    // fanout-free-cone cost estimate.
    let mut ref_counts: Vec<usize> = cleaned.fanouts().iter().map(Vec::len).collect();
    for &(_, s) in cleaned.outputs() {
        ref_counts[s.index()] += 1;
    }

    // Candidates: next-state functions, primary outputs, AND every
    // multi-fanout internal gate — the paper re-implements signals "in
    // terms of their cone inputs or in terms of other intermediate
    // signals". Topological order makes each candidate a cut point for
    // the ones after it.
    let mut is_root: Vec<bool> = vec![false; cleaned.num_signals()];
    for &l in cleaned.latches() {
        is_root[cleaned.latch_next(l).expect("validated").index()] = true;
    }
    for &(_, s) in cleaned.outputs() {
        is_root[s.index()] = true;
    }
    let topo = cleaned.topo_order().expect("validated");
    let mut candidates: Vec<SignalId> = topo
        .iter()
        .copied()
        .filter(|&g| is_root[g.index()] || ref_counts[g.index()] >= 2)
        .collect();
    // Roots that are not gates (outputs wired straight to latches,
    // inputs, or constants).
    for s in cleaned.signals() {
        if is_root[s.index()] && !matches!(cleaned.kind(s), NodeKind::Gate(_)) {
            candidates.push(s);
        }
    }

    // Rebuild target: same interface, shared-structure builder.
    let mut emitter = TreeEmitter::new(&cleaned);
    let mut rebuilt: HashMap<SignalId, SignalId> = HashMap::new();
    let mut var_to_leaf = var_to_leaf;

    for &signal in &candidates {
        report.candidates += 1;
        if rebuilt.contains_key(&signal) {
            continue;
        }
        let support = local_support(&cleaned, signal, extractor.var_map());
        let eligible = support.len() <= options.max_cone_support
            && matches!(cleaned.kind(signal), NodeKind::Gate(_) | NodeKind::Latch { .. });
        report.eligible += usize::from(eligible);
        let new_sig = if eligible {
            // Each candidate gets a fresh step budget forked off the flow
            // governor; node ceiling, deadline, and cancellation are
            // shared. An exhausted candidate keeps its original cone —
            // Algorithm 1 degrades, it never dies.
            let cand_gov = gov.fork_steps(options.budget.candidate_steps);
            // The candidate attempt is a panic-isolation boundary: a
            // crash inside collapse/widen/decompose (including injected
            // `synth.decompose` panic faults) is caught here and treated
            // like an exhausted budget — the original cone survives.
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<_, ResourceExhausted> {
                cand_gov.fault_site(FaultSite::SynthDecompose)?;
                let f = extractor.try_bdd(&mut m, signal, &cand_gov)?;
                // Retrieve unreachable states over the cone's
                // present-state support and widen the specification.
                let ps: Vec<SignalId> = support
                    .iter()
                    .copied()
                    .filter(|s| matches!(cleaned.kind(*s), NodeKind::Latch { .. }))
                    .collect();
                // Partitions the budget cannot project are dropped from
                // the care set — fewer don't cares, still sound.
                let (care, dropped) =
                    reach.try_care_set(&ps, &mut m, &var_of_latch, &cand_gov);
                let unreachable = m.try_not(care, &cand_gov)?;
                let interval = Interval::try_with_dontcare(&mut m, f, unreachable, &cand_gov)?;
                let (tree, stats) =
                    recursive::try_decompose(&mut m, &interval, &options.decompose, &cand_gov)?;
                Ok((tree, stats, dropped))
            }));
            match attempt {
                Ok(Ok((tree, stats, dropped))) => {
                    report.decomposed += 1;
                    report.steps.or_steps += stats.or_steps;
                    report.steps.and_steps += stats.and_steps;
                    report.steps.xor_steps += stats.xor_steps;
                    report.steps.shannon_steps += stats.shannon_steps;
                    report.steps.vars_abstracted += stats.vars_abstracted;
                    report.steps.budget_exhausted_ops += stats.budget_exhausted_ops;
                    report.steps.fallbacks_taken += stats.fallbacks_taken;
                    report.steps.rescued_checks += stats.rescued_checks;
                    report.steps.portfolio.absorb(&stats.portfolio);
                    report.budget_exhausted_ops += stats.budget_exhausted_ops + dropped;
                    report.fallbacks_taken += stats.fallbacks_taken;
                    if options.accept_only_improvements
                        && tree.aig_cost()
                            > mffc_cost(&cleaned, signal, &ref_counts, extractor.var_map())
                    {
                        report.rejected += 1;
                        emitter.copy_cone(&cleaned, signal)
                    } else {
                        emitter.emit(&tree, &var_to_leaf)
                    }
                }
                Ok(Err(_)) => {
                    report.candidates_skipped += 1;
                    report.budget_exhausted_ops += 1;
                    emitter.copy_cone(&cleaned, signal)
                }
                Err(_panic) => {
                    report.worker_panics += 1;
                    report.candidates_skipped += 1;
                    emitter.copy_cone(&cleaned, signal)
                }
            }
        } else {
            report.skipped_wide +=
                usize::from(matches!(cleaned.kind(signal), NodeKind::Gate(_)));
            emitter.copy_cone(&cleaned, signal)
        };
        rebuilt.insert(signal, new_sig);
        // The processed candidate becomes a cut point: later cones read it
        // as a fresh variable bound to its rebuilt implementation.
        if matches!(cleaned.kind(signal), NodeKind::Gate(_)) {
            let v = VarId(m.num_vars() as u32);
            m.new_var();
            extractor.add_leaf(&mut m, signal, v);
            var_to_leaf.insert(v, signal);
            emitter.set_redirect(signal, new_sig);
        }
    }
    report.sharing_hits = emitter.sharing_hits();

    // Wire latches and outputs in the rebuilt netlist.
    let mut out = emitter.into_netlist();
    for &l in cleaned.latches() {
        let next = cleaned.latch_next(l).expect("validated");
        let new_latch = out.signal(cleaned.signal_name(l)).expect("latch copied");
        out.set_latch_next(new_latch, rebuilt[&next]);
    }
    for (name, sig) in cleaned.outputs() {
        out.add_output(name.clone(), rebuilt[sig]);
    }
    let (final_netlist, _) = clean(&out);
    run_validation(original, &final_netlist, options, gov, &mut report);
    (final_netlist, report)
}

/// Runs the optional post-flow SAT validation through the *governed*
/// equivalence checker, so the flow governor's cancellation, deadline,
/// and fault plan reach the validation solver too. An interrupted
/// validation records its cause instead of a verdict.
pub(crate) fn run_validation(
    input: &Netlist,
    output: &Netlist,
    options: &SynthesisOptions,
    gov: &ResourceGovernor,
    report: &mut SynthesisReport,
) {
    let Some(frames) = options.validate_frames else { return };
    match symbi_netlist::sec::try_bounded_check_sat(input, output, frames, gov) {
        Ok((verdict, solver)) => {
            report.sat_validation = Some(SatValidationReport {
                frames,
                equivalent: verdict.is_equivalent(),
                solver,
            });
        }
        Err(cause) => report.validation_interrupted = Some(cause),
    }
}

/// Runs [`optimize`] repeatedly until a pass stops improving the and/inv
/// size (or `max_passes` is hit) — the "re-synthesis loop of
/// well-optimized designs" the paper names as future work. Returns the
/// final netlist, the per-pass reports, and the and/inv sizes after each
/// pass.
///
/// # Panics
///
/// Panics if the netlist fails validation.
pub fn optimize_iterated(
    netlist: &Netlist,
    options: &SynthesisOptions,
    max_passes: usize,
) -> (Netlist, Vec<SynthesisReport>, Vec<usize>) {
    let mut current = netlist.clone();
    let mut reports = Vec::new();
    let mut sizes = Vec::new();
    let mut last_size = symbi_netlist::stats::stats(&clean(netlist).0).aig_ands;
    for _ in 0..max_passes.max(1) {
        let (next, report) = optimize(&current, options);
        let size = symbi_netlist::stats::stats(&next).aig_ands;
        reports.push(report);
        sizes.push(size);
        current = next;
        if size >= last_size {
            break; // no further progress
        }
        last_size = size;
    }
    (current, reports, sizes)
}

/// and/inv cost of a signal's *maximum fanout-free cone*: the gates that
/// exist only to feed this signal and would vanish if it were rewritten.
/// Logic shared with other cones is excluded, so accepting a tree whose
/// cost does not exceed this bound can never grow the circuit.
pub(crate) fn mffc_cost(
    netlist: &Netlist,
    root: SignalId,
    ref_counts: &[usize],
    boundaries: &HashMap<SignalId, VarId>,
) -> usize {
    let mut refs: HashMap<SignalId, usize> = HashMap::new();
    let mut cost = 0usize;
    let mut stack = vec![root];
    while let Some(s) = stack.pop() {
        let NodeKind::Gate(kind) = netlist.kind(s) else { continue };
        if s != root && boundaries.contains_key(&s) {
            continue; // cut point: owned by its own candidate
        }
        cost += kind.aig_and_count(netlist.fanins(s).len());
        for &f in netlist.fanins(s) {
            let slot = refs.entry(f).or_insert_with(|| ref_counts[f.index()]);
            *slot = slot.saturating_sub(1);
            if *slot == 0 {
                stack.push(f);
            }
        }
    }
    cost
}

/// Combinational support of `signal` with the extractor's registered
/// leaves (inputs, latches, and processed cut points) as boundaries.
pub(crate) fn local_support(
    netlist: &Netlist,
    signal: SignalId,
    leaves: &HashMap<SignalId, VarId>,
) -> Vec<SignalId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut stack = vec![signal];
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        if s != signal && leaves.contains_key(&s) {
            out.push(s);
            continue;
        }
        match netlist.kind(s) {
            NodeKind::Input | NodeKind::Latch { .. } => out.push(s),
            NodeKind::Const(_) => {}
            NodeKind::Gate(_) => stack.extend(netlist.fanins(s).iter().copied()),
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_netlist::sim::random_co_simulation;
    use symbi_netlist::GateKind;

    /// One-hot ring whose output logic can exploit unreachable states.
    fn ring_with_logic() -> Netlist {
        let mut n = Netlist::new("ring");
        let en = n.add_input("en");
        let q: Vec<SignalId> = (0..4).map(|i| n.add_latch(format!("q{i}"), i == 0)).collect();
        let nen = n.add_gate("nen", GateKind::Not, vec![en]);
        for i in 0..4 {
            let sh = n.add_gate(format!("sh{i}"), GateKind::And, vec![en, q[(i + 3) % 4]]);
            let ho = n.add_gate(format!("ho{i}"), GateKind::And, vec![nen, q[i]]);
            let nx = n.add_gate(format!("nx{i}"), GateKind::Or, vec![sh, ho]);
            n.set_latch_next(q[i], nx);
        }
        // Output: "exactly one of q0,q1 hot" — under the one-hot invariant
        // this is just q0 + q1.
        let x01 = n.add_gate("x01", GateKind::Xor, vec![q[0], q[1]]);
        let both = n.add_gate("both", GateKind::And, vec![q[0], q[1]]);
        let nboth = n.add_gate("nboth", GateKind::Not, vec![both]);
        let o = n.add_gate("o", GateKind::And, vec![x01, nboth]);
        n.add_output("one_hot01", o);
        n
    }

    #[test]
    fn optimize_preserves_reachable_behaviour() {
        let n = ring_with_logic();
        let (opt, report) = optimize(&n, &SynthesisOptions::default());
        assert!(report.decomposed > 0);
        // Behaviour from the initial state must be identical (don't cares
        // only ever differ on unreachable states).
        assert!(random_co_simulation(&n, &opt, 40, 77));
    }

    #[test]
    fn state_analysis_shrinks_logic() {
        let n = ring_with_logic();
        let with = optimize(&n, &SynthesisOptions::default()).0;
        let without =
            optimize(&n, &SynthesisOptions { reach: None, ..Default::default() }).0;
        let s_with = symbi_netlist::stats::stats(&with);
        let s_without = symbi_netlist::stats::stats(&without);
        assert!(
            s_with.aig_ands <= s_without.aig_ands,
            "don't cares can only help: {} vs {}",
            s_with.aig_ands,
            s_without.aig_ands
        );
    }

    #[test]
    fn no_state_arm_is_equivalent_everywhere() {
        // Without don't cares the optimized circuit must agree from any
        // state, not just reachable ones: check combinationally.
        let n = ring_with_logic();
        let (opt, _) = optimize(&n, &SynthesisOptions { reach: None, ..Default::default() });
        // Co-simulate from several forced states.
        let mut sim_a = symbi_netlist::sim::Simulator::new(&n);
        let mut sim_b = symbi_netlist::sim::Simulator::new(&opt);
        for state in [[1u64, 0, 0, 0], [1, 1, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1]] {
            sim_a.set_state(&state);
            sim_b.set_state(&state);
            assert_eq!(sim_a.eval_comb(&[u64::MAX]), sim_b.eval_comb(&[u64::MAX]));
        }
    }

    #[test]
    fn report_counts_candidates() {
        let n = ring_with_logic();
        let (_, report) = optimize(&n, &SynthesisOptions::default());
        // At least the 4 next-state functions + 1 output; multi-fanout
        // internal gates add more.
        assert!(report.candidates >= 5, "got {}", report.candidates);
        assert!(report.log2_states <= 2.0 + 1e-9, "4 reachable states of 16");
    }

    #[test]
    fn iterated_optimization_converges_and_stays_correct() {
        let n = ring_with_logic();
        let (opt, reports, sizes) = optimize_iterated(&n, &SynthesisOptions::default(), 4);
        assert!(!reports.is_empty());
        // Sizes are non-increasing up to the terminating pass.
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0] || w == &sizes[sizes.len() - 2..]);
        }
        assert!(random_co_simulation(&n, &opt, 40, 4242));
    }

    #[test]
    fn sat_validation_confirms_the_flow_and_reports_effort() {
        let n = ring_with_logic();
        let opts = SynthesisOptions { validate_frames: Some(8), ..Default::default() };
        let (_, report) = optimize(&n, &opts);
        let v = report.sat_validation.expect("validation requested");
        assert_eq!(v.frames, 8);
        assert!(v.equivalent, "don't-care rewrites must preserve reachable behaviour");
        assert!(v.solver.propagations > 0, "validation did no SAT work: {:?}", v.solver);
        // Validation off by default.
        let (_, silent) = optimize(&n, &SynthesisOptions::default());
        assert!(silent.sat_validation.is_none());
    }

    #[test]
    fn injected_panic_at_synth_decompose_is_isolated() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = ring_with_logic();
        let opts = SynthesisOptions::default();
        let plan = Arc::new(
            FaultPlan::new(21).with_rule(FaultSite::SynthDecompose, 1, FaultKind::Panic),
        );
        let gov = opts.budget.governor().with_fault_plan(Arc::clone(&plan));
        let (opt, report) = optimize_governed(&n, &opts, &gov);
        assert_eq!(plan.faults_fired(), 1, "the panic really fired");
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.candidates_skipped, 1);
        // The crashed candidate kept its original cone; behaviour from
        // the initial state is untouched.
        assert!(random_co_simulation(&n, &opt, 40, 123));
    }

    #[test]
    fn injected_cancel_mid_flow_degrades_the_tail_but_finishes() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = ring_with_logic();
        let opts = SynthesisOptions::default();
        // Cancel at the second candidate attempt: the first decomposition
        // lands, every later candidate observes the persistent flag and
        // keeps its cone — the flow drains, it never hangs or dies.
        let plan = Arc::new(
            FaultPlan::new(22).with_rule(FaultSite::SynthDecompose, 2, FaultKind::Cancel),
        );
        let gov = opts.budget.governor().with_fault_plan(plan);
        let (opt, report) = optimize_governed(&n, &opts, &gov);
        assert!(report.candidates_skipped >= 1);
        assert_eq!(report.worker_panics, 0);
        assert!(report.decomposed <= 1, "cancellation stops later rewrites");
        assert!(random_co_simulation(&n, &opt, 40, 321));
    }

    #[test]
    fn interrupted_validation_records_its_cause() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = ring_with_logic();
        let opts = SynthesisOptions { validate_frames: Some(8), ..Default::default() };
        // A budget fault in the validation solver's very first search
        // loop: synthesis itself is untouched, validation reports why it
        // could not finish instead of faking a verdict.
        let plan = Arc::new(
            FaultPlan::new(23).with_rule(FaultSite::SatPropagate, 1, FaultKind::Budget),
        );
        let gov = opts.budget.governor().with_fault_plan(plan);
        let (_, report) = optimize_governed(&n, &opts, &gov);
        assert!(report.sat_validation.is_none());
        assert_eq!(report.validation_interrupted, Some(ResourceExhausted::Steps));
        assert!(report.decomposed > 0, "synthesis itself completed");
    }

    /// Ring plus two structurally different copies of the same AND cone
    /// (direct and De Morgan), which structural hashing cannot merge but
    /// SAT sweeping must.
    fn ring_with_duplicates() -> Netlist {
        let mut n = ring_with_logic();
        let en = n.signal("en").unwrap();
        let q0 = n.signal("q0").unwrap();
        let d1 = n.add_gate("d1", GateKind::And, vec![en, q0]);
        let ne = n.add_gate("ne", GateKind::Not, vec![en]);
        let nq = n.add_gate("nq", GateKind::Not, vec![q0]);
        let d2 = n.add_gate("d2", GateKind::Nor, vec![ne, nq]); // = en·q0
        n.add_output("d1", d1);
        n.add_output("d2", d2);
        n
    }

    #[test]
    fn sweep_prepass_merges_duplicates_and_stays_equivalent() {
        let n = ring_with_duplicates();
        let opts = SynthesisOptions { sweep: true, validate_frames: Some(8), ..Default::default() };
        let (opt, report) = optimize(&n, &opts);
        assert!(report.sweep.merges >= 1, "duplicate cones must merge: {:?}", report.sweep);
        assert!(report.sweep.sat_calls >= report.sweep.merges);
        assert!(!report.sweep.degraded);
        assert!(report.sat_validation.expect("validation ran").equivalent);
        assert!(random_co_simulation(&n, &opt, 40, 91));
    }

    #[test]
    fn sweep_off_leaves_report_and_output_untouched() {
        let n = ring_with_duplicates();
        let (base_net, base_rep) = optimize(&n, &SynthesisOptions::default());
        assert_eq!(base_rep.sweep, SweepSummary::default());
        // Sweep tuning knobs are inert while the pass is off.
        let opts = SynthesisOptions {
            sweep: false,
            sweep_rounds: 99,
            sweep_conflicts: 1,
            ..Default::default()
        };
        let (tuned_net, tuned_rep) = optimize(&n, &opts);
        assert_eq!(
            symbi_netlist::bench::write(&base_net),
            symbi_netlist::bench::write(&tuned_net)
        );
        assert_eq!(base_rep, tuned_rep);
    }

    #[test]
    fn swept_flow_is_jobs_invariant() {
        let n = ring_with_duplicates();
        let seq = SynthesisOptions { sweep: true, jobs: 1, ..Default::default() };
        let par = SynthesisOptions { sweep: true, jobs: 4, ..Default::default() };
        let (seq_net, seq_rep) = optimize(&n, &seq);
        let (par_net, par_rep) = optimize(&n, &par);
        assert_eq!(
            symbi_netlist::bench::write(&seq_net),
            symbi_netlist::bench::write(&par_net),
            "the sweep runs before the fan-out, so jobs must not matter"
        );
        assert_eq!(seq_rep, par_rep);
    }

    #[test]
    fn faulted_sweep_degrades_to_the_unswept_flow() {
        use std::sync::Arc;
        use symbi_bdd::{FaultKind, FaultPlan};
        let n = ring_with_duplicates();
        let opts = SynthesisOptions { sweep: true, ..Default::default() };
        let (unswept_net, _) = optimize(&n, &SynthesisOptions::default());
        for kind in [FaultKind::Budget, FaultKind::Cancel, FaultKind::Panic] {
            let plan = Arc::new(
                FaultPlan::new(41).with_rule(FaultSite::NetlistSweep, 1, kind),
            );
            let gov = opts.budget.governor().with_fault_plan(Arc::clone(&plan));
            let (net, report) = optimize_governed(&n, &opts, &gov);
            assert!(plan.faults_fired() >= 1, "{kind:?} must fire");
            assert!(report.sweep.degraded, "{kind:?} must degrade the sweep");
            assert_eq!(report.sweep.merges, 0);
            if kind != FaultKind::Cancel {
                // A killed sweep leaves the rest of the flow untouched:
                // byte-identical to never having asked for it. (A cancel
                // poisons the shared governor, degrading later
                // candidates too, so only equivalence is required.)
                assert_eq!(
                    symbi_netlist::bench::write(&net),
                    symbi_netlist::bench::write(&unswept_net),
                    "{kind:?}: degraded flow must equal the unswept flow"
                );
            }
            assert!(random_co_simulation(&n, &net, 40, 17));
        }
    }

    #[test]
    fn wide_cones_are_copied() {
        let mut n = Netlist::new("wide");
        let ins: Vec<SignalId> = (0..20).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate("g", GateKind::And, ins);
        n.add_output("g", g);
        let opts = SynthesisOptions { max_cone_support: 8, ..Default::default() };
        let (opt, report) = optimize(&n, &opts);
        assert_eq!(report.skipped_wide, 1);
        assert_eq!(report.decomposed, 0);
        assert!(random_co_simulation(&n, &opt, 8, 3));
    }
}
