//! Standard-cell library handling: a `genlib`-subset parser and an
//! embedded mcnc-like library.
//!
//! The paper's Table 3.2 baseline is "optimized against \[the\] publicly
//! available mcnc.genlib library"; this module supplies an equivalent
//! library (areas and load-dependent delays in the same style) plus a
//! parser for the classic SIS `genlib` syntax:
//!
//! ```text
//! GATE nand2 2.0 O=!(a*b); PIN * INV 1 999 1.0 0.2 1.0 0.2
//! ```
//!
//! Cell functions are stored as truth tables over the declared pin order,
//! so the technology mapper can match them against cut functions.

use std::fmt;

/// A library cell: single-output function over up to [`MAX_PINS`] pins.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name.
    pub name: String,
    /// Area (literal-equivalents in the mcnc tradition).
    pub area: f64,
    /// Input pin names, in truth-table bit order.
    pub pins: Vec<String>,
    /// Truth table over the pins: bit `i` is the output for the input
    /// assignment whose bit `j` is `i >> j & 1`.
    pub table: u16,
    /// Intrinsic (block) delay.
    pub delay_block: f64,
    /// Delay per unit of fanout load.
    pub delay_fanout: f64,
}

/// Maximum supported cell arity (truth tables are stored in a `u16`).
pub const MAX_PINS: usize = 4;

impl Cell {
    /// Number of input pins.
    pub fn arity(&self) -> usize {
        self.pins.len()
    }
}

/// A cell library.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Library {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Error from [`Library::parse_genlib`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGenlibError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseGenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "genlib error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGenlibError {}

impl Library {
    /// Parses the SIS `genlib` subset: `GATE name area out=expr; PIN …`.
    /// Expressions use `!` (negation), `*` (AND), `+` (OR), `^` (XOR),
    /// parentheses, and the constants `0`/`1` (`CONST0`/`CONST1` gates are
    /// skipped). Only the first `PIN` line's delay parameters are used,
    /// reading the rise block and fanout values.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    pub fn parse_genlib(text: &str) -> Result<Library, ParseGenlibError> {
        let mut cells = Vec::new();
        // Join physical lines: a GATE statement runs to the next GATE.
        let mut statements: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("GATE") || statements.is_empty() {
                statements.push((lineno + 1, line.to_string()));
            } else {
                let last = statements.last_mut().expect("nonempty");
                last.1.push(' ');
                last.1.push_str(line);
            }
        }
        for (lineno, stmt) in statements {
            let err = |message: String| ParseGenlibError { line: lineno, message };
            let rest = match stmt.strip_prefix("GATE") {
                Some(r) => r.trim(),
                None => return Err(err(format!("expected GATE, found `{stmt}`"))),
            };
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| err("missing cell name".into()))?.to_string();
            let area: f64 = parts
                .next()
                .ok_or_else(|| err("missing area".into()))?
                .parse()
                .map_err(|e| err(format!("bad area: {e}")))?;
            let tail = parts.collect::<Vec<_>>().join(" ");
            if tail.is_empty() {
                return Err(err("missing function".into()));
            }
            let tail = tail.as_str();
            let (func, pin_part) = match tail.split_once(';') {
                Some((f, p)) => (f.trim(), p.trim()),
                None => (tail.trim(), ""),
            };
            let (_out, expr_text) = func
                .split_once('=')
                .ok_or_else(|| err(format!("expected `out=expr`, found `{func}`")))?;
            // Constant cells carry no pins; the mapper doesn't use them.
            if expr_text.trim() == "0" || expr_text.trim() == "1" {
                continue;
            }
            let (table, pins) = parse_expr(expr_text)
                .map_err(|message| err(format!("bad expression `{expr_text}`: {message}")))?;
            if pins.len() > MAX_PINS {
                continue; // wider cells are legal genlib but unmatchable here
            }
            // PIN name/`*` phase load max-load rise-block rise-fanout
            // fall-block fall-fanout.
            let mut delay_block = 1.0;
            let mut delay_fanout = 0.2;
            if let Some(pin_text) = pin_part.strip_prefix("PIN") {
                let fields: Vec<&str> = pin_text.split_whitespace().collect();
                if fields.len() >= 6 {
                    delay_block = fields[4].parse().unwrap_or(1.0);
                    delay_fanout = fields[5].parse().unwrap_or(0.2);
                }
            }
            cells.push(Cell { name, area, pins, table, delay_block, delay_fanout });
        }
        Ok(Library { cells })
    }

    /// The embedded mcnc-like library: inverter, buffer, NAND/NOR 2–4,
    /// AND/OR 2, XOR/XNOR 2, AOI/OAI 21 and 22 — the workhorse subset of
    /// `mcnc.genlib` with its characteristic area/delay ratios.
    pub fn mcnc_like() -> Library {
        Library::parse_genlib(MCNC_LIKE_GENLIB).expect("embedded library parses")
    }

    /// Cells with the given arity.
    pub fn cells_of_arity(&self, arity: usize) -> impl Iterator<Item = &Cell> {
        self.cells.iter().filter(move |c| c.arity() == arity)
    }

    /// The inverter (smallest-area arity-1 cell whose table is NOT).
    ///
    /// # Panics
    ///
    /// Panics if the library has no inverter.
    pub fn inverter(&self) -> &Cell {
        self.cells
            .iter()
            .filter(|c| c.arity() == 1 && c.table & 0b11 == 0b01)
            .min_by(|a, b| a.area.total_cmp(&b.area))
            .expect("library must contain an inverter")
    }
}

/// The embedded library text (mcnc-style values).
pub const MCNC_LIKE_GENLIB: &str = r#"
# mcnc.genlib-style cell set (areas in literal equivalents)
GATE inv1   1.0 O=!a;          PIN * INV 1 999 0.9 0.3 0.9 0.3
GATE buf1   2.0 O=a;           PIN * NONINV 1 999 1.0 0.2 1.0 0.2
GATE nand2  2.0 O=!(a*b);      PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE nand3  3.0 O=!(a*b*c);    PIN * INV 1 999 1.1 0.3 1.1 0.3
GATE nand4  4.0 O=!(a*b*c*d);  PIN * INV 1 999 1.4 0.4 1.4 0.4
GATE nor2   2.0 O=!(a+b);      PIN * INV 1 999 1.4 0.5 1.4 0.5
GATE nor3   3.0 O=!(a+b+c);    PIN * INV 1 999 2.4 0.7 2.4 0.7
GATE nor4   4.0 O=!(a+b+c+d);  PIN * INV 1 999 3.8 1.0 3.8 1.0
GATE and2   3.0 O=a*b;         PIN * NONINV 1 999 1.9 0.3 1.9 0.3
GATE or2    3.0 O=a+b;         PIN * NONINV 1 999 2.4 0.3 2.4 0.3
GATE xor2   5.0 O=a^b;         PIN * UNKNOWN 2 999 1.9 0.5 1.9 0.5
GATE xnor2  5.0 O=!(a^b);      PIN * UNKNOWN 2 999 2.1 0.5 2.1 0.5
GATE aoi21  3.0 O=!(a*b+c);    PIN * INV 1 999 1.6 0.4 1.6 0.4
GATE aoi22  4.0 O=!(a*b+c*d);  PIN * INV 1 999 2.0 0.4 2.0 0.4
GATE oai21  3.0 O=!((a+b)*c);  PIN * INV 1 999 1.6 0.4 1.6 0.4
GATE oai22  4.0 O=!((a+b)*(c+d)); PIN * INV 1 999 2.0 0.4 2.0 0.4
GATE mux21  6.0 O=s*a+!s*b;    PIN * UNKNOWN 2 999 2.0 0.5 2.0 0.5
"#;

/// Parses a genlib Boolean expression; returns the truth table and the
/// pin names in first-appearance order.
fn parse_expr(text: &str) -> Result<(u16, Vec<String>), String> {
    let mut pins: Vec<String> = Vec::new();
    let tokens = tokenize(text)?;
    let mut pos = 0usize;
    let table = parse_or(&tokens, &mut pos, &mut pins)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens after position {pos}"));
    }
    if pins.len() > 16 {
        return Err("too many pins".into());
    }
    Ok((table, pins))
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Pin(String),
    Not,
    And,
    Or,
    Xor,
    LParen,
    RParen,
    Const(bool),
}

fn tokenize(text: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '!' => {
                chars.next();
                out.push(Token::Not);
            }
            '*' | '&' => {
                chars.next();
                out.push(Token::And);
            }
            '+' | '|' => {
                chars.next();
                out.push(Token::Or);
            }
            '^' => {
                chars.next();
                out.push(Token::Xor);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '0' => {
                chars.next();
                out.push(Token::Const(false));
            }
            '1' => {
                chars.next();
                out.push(Token::Const(true));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Pin(name));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(out)
}

fn pin_mask(pins: &mut Vec<String>, name: &str) -> Result<u16, String> {
    let idx = match pins.iter().position(|p| p == name) {
        Some(i) => i,
        None => {
            if pins.len() >= MAX_PINS {
                // Still parse wider cells; the caller filters them.
                pins.push(name.to_string());
                return Ok(0); // placeholder; table becomes meaningless but unused
            }
            pins.push(name.to_string());
            pins.len() - 1
        }
    };
    // Truth table column for pin `idx` over up to MAX_PINS inputs.
    let mut mask = 0u16;
    for row in 0..16u16 {
        if row >> idx & 1 == 1 {
            mask |= 1 << row;
        }
    }
    Ok(mask)
}

fn parse_or(tokens: &[Token], pos: &mut usize, pins: &mut Vec<String>) -> Result<u16, String> {
    let mut acc = parse_and(tokens, pos, pins)?;
    while matches!(tokens.get(*pos), Some(Token::Or)) {
        *pos += 1;
        acc |= parse_and(tokens, pos, pins)?;
    }
    Ok(acc)
}

fn parse_and(tokens: &[Token], pos: &mut usize, pins: &mut Vec<String>) -> Result<u16, String> {
    let mut acc = parse_xor(tokens, pos, pins)?;
    loop {
        match tokens.get(*pos) {
            Some(Token::And) => {
                *pos += 1;
                acc &= parse_xor(tokens, pos, pins)?;
            }
            // Juxtaposition (`ab`) is not genlib, but an implicit AND
            // before `(`/`!`/pin keeps us liberal in what we accept.
            Some(Token::LParen | Token::Not | Token::Pin(_)) => {
                acc &= parse_xor(tokens, pos, pins)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_xor(tokens: &[Token], pos: &mut usize, pins: &mut Vec<String>) -> Result<u16, String> {
    let mut acc = parse_atom(tokens, pos, pins)?;
    while matches!(tokens.get(*pos), Some(Token::Xor)) {
        *pos += 1;
        acc ^= parse_atom(tokens, pos, pins)?;
    }
    Ok(acc)
}

fn parse_atom(tokens: &[Token], pos: &mut usize, pins: &mut Vec<String>) -> Result<u16, String> {
    match tokens.get(*pos) {
        Some(Token::Not) => {
            *pos += 1;
            Ok(!parse_atom(tokens, pos, pins)?)
        }
        Some(Token::LParen) => {
            *pos += 1;
            let inner = parse_or(tokens, pos, pins)?;
            match tokens.get(*pos) {
                Some(Token::RParen) => {
                    *pos += 1;
                    Ok(inner)
                }
                _ => Err("missing `)`".into()),
            }
        }
        Some(Token::Pin(name)) => {
            let name = name.clone();
            *pos += 1;
            pin_mask(pins, &name)
        }
        Some(Token::Const(b)) => {
            *pos += 1;
            Ok(if *b { 0xffff } else { 0 })
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(cell: &Cell, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), cell.arity());
        let row: usize = inputs.iter().enumerate().map(|(i, &b)| usize::from(b) << i).sum();
        cell.table >> row & 1 == 1
    }

    #[test]
    fn embedded_library_parses() {
        let lib = Library::mcnc_like();
        assert!(lib.cells.len() >= 15);
        assert_eq!(lib.inverter().name, "inv1");
    }

    #[test]
    fn nand2_truth_table() {
        let lib = Library::mcnc_like();
        let nand2 = lib.cells.iter().find(|c| c.name == "nand2").unwrap();
        assert_eq!(nand2.arity(), 2);
        assert!(eval(nand2, &[false, false]));
        assert!(eval(nand2, &[true, false]));
        assert!(!eval(nand2, &[true, true]));
    }

    #[test]
    fn aoi21_truth_table() {
        let lib = Library::mcnc_like();
        let aoi = lib.cells.iter().find(|c| c.name == "aoi21").unwrap();
        // O = !(a*b + c)
        for bits in 0..8u16 {
            let (a, b, c) = (bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
            assert_eq!(eval(aoi, &[a, b, c]), !((a && b) || c), "bits {bits:03b}");
        }
    }

    #[test]
    fn mux_truth_table() {
        let lib = Library::mcnc_like();
        let mux = lib.cells.iter().find(|c| c.name == "mux21").unwrap();
        assert_eq!(mux.arity(), 3);
        // Pin order is first appearance: s, a, b.
        for bits in 0..8u16 {
            let (s, a, b) = (bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
            assert_eq!(eval(mux, &[s, a, b]), if s { a } else { b });
        }
    }

    #[test]
    fn xor_parse() {
        let lib = Library::parse_genlib("GATE x 1.0 O=a^b^c; PIN * UNKNOWN 1 999 1 0.1 1 0.1")
            .unwrap();
        let cell = &lib.cells[0];
        for bits in 0..8u16 {
            let ones = (bits & 0b111).count_ones();
            assert_eq!(cell.table >> bits & 1 == 1, ones % 2 == 1);
        }
    }

    #[test]
    fn delay_fields_read() {
        let lib = Library::mcnc_like();
        let nor4 = lib.cells.iter().find(|c| c.name == "nor4").unwrap();
        assert!((nor4.delay_block - 3.8).abs() < 1e-9);
        assert!((nor4.delay_fanout - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = Library::parse_genlib("GATE broken").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
        let err2 = Library::parse_genlib("GATE g 1.0 O=a*); PIN * INV 1 999 1 1 1 1").unwrap_err();
        assert!(err2.message.contains("bad expression"));
    }

    #[test]
    fn wide_cells_skipped_not_fatal() {
        let lib = Library::parse_genlib(
            "GATE wide 5.0 O=a*b*c*d*e; PIN * INV 1 999 1 1 1 1\nGATE inv 1.0 O=!a; PIN * INV 1 999 1 1 1 1",
        )
        .unwrap();
        assert_eq!(lib.cells.len(), 1);
        assert_eq!(lib.cells[0].name, "inv");
    }
}
