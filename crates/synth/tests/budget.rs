//! Acceptance tests for the resource governor: a deliberately starved
//! run must still finish with a sequentially equivalent netlist (keeping
//! original cones where the budget ran out), and the default unlimited
//! budget must be indistinguishable from an ungoverned flow.

use std::time::Duration;
use symbi_circuits::industrial::{generate, IndustrialSpec};
use symbi_circuits::CircuitSpec;
use symbi_netlist::{bench, sec, Netlist};
use symbi_synth::flow::{optimize, optimize_governed, BudgetOptions, SynthesisOptions};

/// A scaled-down seq4: same generator and name seed as the Table 3.2
/// stand-in, with an interface small enough for an exact product-machine
/// equivalence check.
fn seq4_like() -> Netlist {
    generate(&IndustrialSpec {
        base: CircuitSpec { name: "seq4", inputs: 6, outputs: 4, latches: 7 },
        and_nodes: 70,
    })
}

#[test]
fn starved_run_finishes_equivalent_with_skips() {
    let n = seq4_like();
    let options = SynthesisOptions {
        budget: BudgetOptions { candidate_steps: 24, ..Default::default() },
        ..Default::default()
    };
    let (opt, report) = optimize(&n, &options);
    assert!(
        report.candidates_skipped > 0,
        "a 24-step budget cannot decompose every cone: {report:?}"
    );
    assert!(report.budget_exhausted_ops > 0);
    // The skipped candidates kept their original cones, so the result is
    // still sequentially equivalent to the input.
    assert_eq!(
        sec::product_machine_check(&n, &opt, 100_000),
        Some(true),
        "starved optimization must stay equivalent"
    );
}

#[test]
fn starved_reachability_and_flow_still_equivalent() {
    // Starve reachability too: bailed partitions claim everything
    // reachable, which only removes don't cares.
    let n = seq4_like();
    let mut options = SynthesisOptions {
        budget: BudgetOptions { candidate_steps: 512, ..Default::default() },
        ..Default::default()
    };
    if let Some(reach) = options.reach.as_mut() {
        reach.step_budget = 100;
    }
    let (opt, _) = optimize(&n, &options);
    assert_eq!(sec::product_machine_check(&n, &opt, 100_000), Some(true));
}

#[test]
fn zero_timeout_degrades_to_copy() {
    let n = seq4_like();
    let options = SynthesisOptions {
        budget: BudgetOptions { timeout: Some(Duration::ZERO), ..Default::default() },
        ..Default::default()
    };
    let (opt, report) = optimize(&n, &options);
    assert!(report.candidates_skipped > 0, "an expired deadline skips candidates");
    assert_eq!(sec::product_machine_check(&n, &opt, 100_000), Some(true));
}

#[test]
fn default_budget_reproduces_unlimited_flow_bit_for_bit() {
    let n = seq4_like();
    let default_opts = SynthesisOptions::default();
    let (a, ra) = optimize(&n, &default_opts);
    // An explicitly governed run with an unlimited governor...
    let gov = BudgetOptions::default().governor();
    let (b, rb) = optimize_governed(&n, &default_opts, &gov);
    // ...and a huge *finite* budget (metered governor, never trips).
    let finite_opts = SynthesisOptions {
        budget: BudgetOptions { candidate_steps: 1 << 40, ..Default::default() },
        ..Default::default()
    };
    let (c, rc) = optimize(&n, &finite_opts);
    assert_eq!(bench::write(&a), bench::write(&b));
    assert_eq!(bench::write(&a), bench::write(&c));
    assert_eq!(ra, rb);
    assert_eq!(ra, rc);
    assert_eq!(ra.candidates_skipped, 0);
    assert_eq!(ra.budget_exhausted_ops, 0);
    assert_eq!(ra.fallbacks_taken, 0);
}
