//! Property-based tests for the synthesis flow and mapper: on random
//! sequential netlists, Algorithm 1 must preserve behaviour and the
//! mapper must produce consistent metrics.

use proptest::prelude::*;
use symbi_netlist::{clean, sim, GateKind, Netlist, SignalId};
use symbi_synth::flow::{optimize, SynthesisOptions};
use symbi_synth::genlib::Library;
use symbi_synth::map::{map, MapMode};

#[derive(Debug, Clone)]
struct NetSpec {
    seed: u64,
    inputs: usize,
    latches: usize,
    gates: usize,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    (any::<u64>(), 1usize..4, 1usize..5, 2usize..18).prop_map(|(seed, inputs, latches, gates)| {
        NetSpec { seed, inputs, latches, gates }
    })
}

fn build(spec: &NetSpec) -> Netlist {
    let mut state = spec.seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut n = Netlist::new("prop");
    let mut pool: Vec<SignalId> = Vec::new();
    for i in 0..spec.inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let latches: Vec<SignalId> =
        (0..spec.latches).map(|i| n.add_latch(format!("q{i}"), next() & 1 == 1)).collect();
    pool.extend(latches.iter().copied());
    let kinds = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand, GateKind::Nor];
    for g in 0..spec.gates {
        let kind = kinds[(next() % 5) as usize];
        let arity = 2 + (next() % 2) as usize;
        let fanins: Vec<SignalId> =
            (0..arity).map(|_| pool[(next() % pool.len() as u64) as usize]).collect();
        pool.push(n.add_gate(format!("g{g}"), kind, fanins));
    }
    for &l in &latches {
        let src = pool[(next() % pool.len() as u64) as usize];
        n.set_latch_next(l, src);
    }
    n.add_output("o0", pool[pool.len() - 1]);
    n.add_output("o1", pool[pool.len() / 2]);
    n
}

/// Symbolically unrolls a netlist over per-frame primary-input variables,
/// returning the flattened per-frame output BDDs.
fn unroll(
    m: &mut symbi_bdd::Manager,
    n: &Netlist,
    frame_inputs: &[Vec<symbi_bdd::NodeId>],
) -> Vec<symbi_bdd::NodeId> {
    use std::collections::HashMap;
    use symbi_netlist::NodeKind;
    let order = n.topo_order().expect("valid netlist");
    let mut state: HashMap<SignalId, symbi_bdd::NodeId> = n
        .latches()
        .iter()
        .map(|&l| {
            (l, if n.latch_init(l) { symbi_bdd::NodeId::TRUE } else { symbi_bdd::NodeId::FALSE })
        })
        .collect();
    let mut outs = Vec::new();
    for inputs in frame_inputs {
        let mut value: HashMap<SignalId, symbi_bdd::NodeId> = state.clone();
        for (&sig, &node) in n.inputs().iter().zip(inputs) {
            value.insert(sig, node);
        }
        for s in n.signals() {
            if let NodeKind::Const(b) = n.kind(s) {
                value.insert(s, if b { symbi_bdd::NodeId::TRUE } else { symbi_bdd::NodeId::FALSE });
            }
        }
        for &g in &order {
            let fanins: Vec<symbi_bdd::NodeId> =
                n.fanins(g).iter().map(|f| value[f]).collect();
            let NodeKind::Gate(kind) = n.kind(g) else { unreachable!() };
            let node = match kind {
                GateKind::And => m.and_many(fanins),
                GateKind::Or => m.or_many(fanins),
                GateKind::Xor => m.xor_many(fanins),
                GateKind::Nand => {
                    let x = m.and_many(fanins);
                    m.not(x)
                }
                GateKind::Nor => {
                    let x = m.or_many(fanins);
                    m.not(x)
                }
                GateKind::Xnor => {
                    let x = m.xor_many(fanins);
                    m.not(x)
                }
                GateKind::Not => m.not(fanins[0]),
                GateKind::Buf => fanins[0],
            };
            value.insert(g, node);
        }
        for &(_, sig) in n.outputs() {
            outs.push(value[&sig]);
        }
        state = n
            .latches()
            .iter()
            .map(|&l| (l, value[&n.latch_next(l).expect("wired")]))
            .collect();
    }
    outs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimize_preserves_sequential_behaviour(spec in net_spec()) {
        let n = build(&spec);
        let (optimized, _) = optimize(&n, &SynthesisOptions::default());
        prop_assert!(optimized.validate().is_ok());
        prop_assert!(sim::random_co_simulation(&n, &optimized, 40, spec.seed ^ 0x5a5a));
    }

    #[test]
    fn optimize_is_sequentially_equivalent_bounded(spec in net_spec()) {
        // Bounded sequential equivalence check: unroll both machines
        // symbolically for k frames over per-frame input variables and
        // compare every output BDD frame by frame — exact over the bound,
        // for *every* input sequence (not just sampled ones).
        let n = build(&spec);
        let (optimized, _) = optimize(&n, &SynthesisOptions::default());
        let frames = 5;
        let mut m = symbi_bdd::Manager::new();
        let per_frame: Vec<Vec<symbi_bdd::NodeId>> =
            (0..frames).map(|_| m.new_vars(n.num_inputs())).collect();
        let outs_a = unroll(&mut m, &n, &per_frame);
        let outs_b = unroll(&mut m, &optimized, &per_frame);
        for (t, (fa, fb)) in outs_a.iter().zip(&outs_b).enumerate() {
            prop_assert_eq!(fa, fb, "outputs diverge at frame {}", t);
        }
    }

    #[test]
    fn optimize_is_sequentially_equivalent_exact(spec in net_spec()) {
        // Product-machine reachability: *unbounded* equivalence, exact.
        // The generated designs are small enough (≤ 4 + 4 joint latches)
        // for the full joint state space.
        let n = build(&spec);
        let (optimized, _) = optimize(&n, &SynthesisOptions::default());
        let verdict =
            symbi_netlist::sec::product_machine_check(&n, &optimized, 10_000);
        prop_assert_eq!(verdict, Some(true), "optimizer broke sequential equivalence");
    }

    #[test]
    fn optimize_never_grows_aig_size(spec in net_spec()) {
        let n = build(&spec);
        let (cleaned, _) = clean::clean(&n);
        let (optimized, _) = optimize(&n, &SynthesisOptions::default());
        let before = symbi_netlist::stats::stats(&cleaned).aig_ands;
        let after = symbi_netlist::stats::stats(&optimized).aig_ands;
        prop_assert!(after <= before, "MFFC gating must prevent growth: {after} > {before}");
    }

    #[test]
    fn mapper_metrics_are_sane(spec in net_spec()) {
        let n = build(&spec);
        let lib = Library::mcnc_like();
        let area_mapped = map(&n, &lib, MapMode::Area);
        let delay_mapped = map(&n, &lib, MapMode::Delay);
        prop_assert!(area_mapped.area >= 0.0);
        prop_assert!(area_mapped.delay >= 0.0);
        prop_assert!(delay_mapped.area >= 0.0);
        // (No strict mode dominance: the DP optimizes tree-duplicated
        // cost, but the reported metrics are DAG-cover metrics, so either
        // mode can win either metric on shared logic.)
        // Histogram totals match the instance count.
        let total: usize = area_mapped.cell_histogram.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, area_mapped.cells);
    }
}
